//! The real-thread backend: one OS thread per site over a
//! [`ChannelTransport`].
//!
//! [`ThreadedCluster`] spawns each [`SiteWorker`]
//! on its own thread; the threads share nothing but the transport (frames)
//! and the engines' internal mutexes (which the coordinating thread uses
//! for inspection, exactly as the single-threaded runtimes allow). The
//! cluster implements [`SiteRuntime`], so `drive()`, the workloads and the
//! equivalence suites run unchanged on top of real concurrency; a
//! [`ClusterClient`] per site additionally lets load-generator threads
//! hammer the sites in parallel without going through the coordinating
//! thread ([`threaded_load`]).

use std::collections::BTreeSet;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use homeo_lang::ids::ObjId;
use homeo_protocol::{
    negotiate_allowances_cached, NegotiationCache, ProgramBundle, ProgramSet, ReplicatedMode,
    ReplicatedStats, Roster,
};
use homeo_runtime::{OpOutcome, SiteOp, SiteRuntime};
use homeo_sim::DetRng;
use homeo_store::Engine;

use crate::msg::{CounterMeta, Message};
use crate::transport::{ChannelTransport, Input, Transport, CLIENT};
use crate::worker::SiteWorker;
use crate::ClusterConfig;

/// Control-plane commands the coordinating thread (or a client attachment)
/// sends to a worker thread alongside protocol frames.
#[derive(Debug)]
pub enum Control {
    /// Reply with the outcomes of every submitted operation once the site
    /// is idle (all operations completed).
    Poll {
        /// Where to send the outcomes.
        reply: Sender<Vec<OpOutcome>>,
    },
    /// Fold every registered counter and reply with the total solver time.
    Synchronize {
        /// Where to send the solver micros.
        reply: Sender<u64>,
    },
    /// Reply with the worker's aggregate statistics.
    Stats {
        /// Where to send the statistics.
        reply: Sender<ReplicatedStats>,
    },
    /// Reply with the worker's rendered telemetry dump
    /// ([`SiteWorker::metrics_text`]).
    Metrics {
        /// Where to send the text dump.
        reply: Sender<String>,
    },
    /// Reply with the worker's current membership roster.
    Roster {
        /// Where to send the roster.
        reply: Sender<Roster>,
    },
    /// Exit the worker loop.
    Shutdown,
}

/// A set of replicated counters executed by per-site worker threads that
/// communicate only through length-prefixed [`Message`] frames.
pub struct ThreadedCluster {
    engines: Vec<Arc<Engine>>,
    transport: ChannelTransport,
    handles: Vec<JoinHandle<()>>,
    registered: BTreeSet<ObjId>,
    config: ClusterConfig,
    /// Negotiations run by the registration path (worker statistics are
    /// aggregated on top by [`ThreadedCluster::stats`]).
    registration_negotiations: u64,
    /// Solver time spent by the registration path, in microseconds.
    registration_solver_micros: u64,
    /// Memoized treaty templates + solver scratch for the registration
    /// path's negotiations.
    registration_cache: NegotiationCache,
    /// The coordinating thread's mirror of the committed roster, refreshed
    /// by [`ThreadedCluster::join`] / [`ThreadedCluster::leave`]. Counter
    /// registration negotiates over these members.
    roster: Roster,
    /// Frame-encode scratch for the coordinating thread's batched sends
    /// ([`Message::encode_submit_into`]).
    scratch: Vec<u8>,
}

impl ThreadedCluster {
    /// Spawns `sites` worker threads over fresh (empty) engines.
    pub fn new(sites: usize, config: ClusterConfig) -> Self {
        assert!(sites > 0);
        Self::from_engines((0..sites).map(|_| Engine::new()).collect(), config)
    }

    /// Spawns one worker thread per pre-populated engine.
    pub fn from_engines(engines: Vec<Engine>, config: ClusterConfig) -> Self {
        assert!(!engines.is_empty());
        let sites = engines.len();
        let engines: Vec<Arc<Engine>> = engines.into_iter().map(Arc::new).collect();
        let hints = config.hints(sites);
        let mut senders = Vec::with_capacity(sites);
        let mut receivers = Vec::with_capacity(sites);
        for _ in 0..sites {
            let (tx, rx) = channel::<Input>();
            senders.push(tx);
            receivers.push(rx);
        }
        let transport = ChannelTransport::new(senders);
        let handles = receivers
            .into_iter()
            .enumerate()
            .map(|(site, rx)| {
                let worker = SiteWorker::new(
                    site,
                    sites,
                    config.mode,
                    hints.clone(),
                    config.timer,
                    engines[site].clone(),
                )
                .with_tuning(config.tuning);
                let transport = transport.clone();
                std::thread::Builder::new()
                    .name(format!("homeo-site-{site}"))
                    .spawn(move || worker_loop(worker, rx, transport, None))
                    .expect("spawn site worker thread")
            })
            .collect();
        ThreadedCluster {
            engines,
            transport,
            handles,
            registered: BTreeSet::new(),
            config,
            registration_negotiations: 0,
            registration_solver_micros: 0,
            registration_cache: NegotiationCache::new(),
            roster: Roster::founding(sites),
            scratch: Vec::new(),
        }
    }

    /// Spawns a fresh site and joins it to the live cluster: the new
    /// worker's channel is appended to the shared transport, its thread
    /// starts in joining mode, and the membership coordinator hands every
    /// registered counter's shard off to the grown member set. Blocks until
    /// the epoch-bumped roster is committed; returns the new site id.
    pub fn join(&mut self) -> usize {
        let engine = Arc::new(Engine::new());
        self.engines.push(engine.clone());
        let (tx, rx) = channel::<Input>();
        let site = self.transport.add_peer(tx);
        assert_eq!(site, self.engines.len() - 1, "site ids are append-only");
        let contact = self.roster.leader();
        let epoch_before = self.roster.epoch;
        let expected_amount = self.config.hints(1).expected_amount;
        let worker = SiteWorker::new_joining(
            site,
            self.config.mode,
            expected_amount,
            self.config.timer,
            engine,
        )
        .with_tuning(self.config.tuning);
        let transport = self.transport.clone();
        let handle = std::thread::Builder::new()
            .name(format!("homeo-site-{site}"))
            .spawn(move || worker_loop(worker, rx, transport, Some(contact)))
            .expect("spawn joining site worker thread");
        self.handles.push(handle);
        // The join is committed once the membership coordinator's roster
        // carries the new member at a bumped epoch — by then every
        // registered counter has been handed off under its ack barrier (the
        // roster broadcast is the last step of the membership change).
        self.roster = self.await_roster(contact, |r| r.epoch > epoch_before && r.contains(site));
        site
    }

    /// Retires a member site: its counter shards are handed off to the
    /// surviving members (folding its unsynchronized deltas into the new
    /// bases) and the epoch-bumped roster evicts it. The worker thread
    /// stays alive — a retired worker completes client operations as
    /// uncommitted no-ops — but takes no further part in any treaty.
    /// Blocks until the shrunk roster is committed.
    pub fn leave(&mut self, site: usize) {
        assert!(self.roster.contains(site), "site {site} is not a member");
        assert!(self.roster.len() > 1, "cannot retire the last member");
        let epoch_before = self.roster.epoch;
        let watch = *self
            .roster
            .members
            .iter()
            .find(|&&m| m != site)
            .expect("a surviving member");
        // Any member forwards the request to the membership coordinator.
        let frame = Message::Leave { site: site as u64 }.encode();
        self.transport.send(CLIENT, watch, frame);
        self.roster = self.await_roster(watch, |r| r.epoch > epoch_before && !r.contains(site));
    }

    /// Polls `site`'s roster until `done` accepts it.
    fn await_roster(&self, site: usize, done: impl Fn(&Roster) -> bool) -> Roster {
        loop {
            let roster = self.roster_of(site);
            if done(&roster) {
                return roster;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// The roster `site`'s worker currently holds.
    pub fn roster_of(&self, site: usize) -> Roster {
        let (tx, rx) = channel();
        self.transport.control(site, Control::Roster { reply: tx });
        rx.recv().expect("site worker terminated")
    }

    /// The committed roster as last observed by the coordinating thread.
    pub fn roster(&self) -> &Roster {
        &self.roster
    }

    /// Registers a counter cluster-wide: the initial value is written
    /// through every site's engine (WAL-logged), the initial treaty is
    /// negotiated here over the current roster's members, and the metadata
    /// is broadcast to every spawned worker (non-members keep it for
    /// routing only). Ordering is safe without an ack round: a worker's
    /// channel delivers its `Register` before any frame caused by a later
    /// `submit`, because every frame chain is causally ordered behind this
    /// broadcast. Returns the solver time in microseconds.
    pub fn register(&mut self, obj: ObjId, initial: i64, lower_bound: i64) -> u64 {
        if !self.registered.insert(obj.clone()) {
            return 0;
        }
        for engine in &self.engines {
            engine
                .write_logged(obj.as_str(), initial)
                .expect("population write cannot conflict");
        }
        let members = self.roster.members.clone();
        let (allowances, solver_micros) = negotiate_allowances_cached(
            self.config.mode,
            &self.config.hints(members.len()),
            members.len(),
            initial,
            lower_bound,
            self.config.timer,
            &mut self.registration_cache,
            None,
        );
        self.registration_negotiations += 1;
        self.registration_solver_micros += solver_micros;
        let meta = CounterMeta {
            obj,
            base: initial,
            lower_bound,
            members,
            allowances,
        };
        // Encode the broadcast once; each site gets a byte-copy of the same
        // frame instead of a fresh encoding pass.
        let frame = Message::Register { meta }.encode();
        for site in 0..self.engines.len() {
            self.transport.send(CLIENT, site, frame.clone());
        }
        solver_micros
    }

    /// Registers a general-transaction program bundle cluster-wide: the
    /// source text is broadcast to every worker, each of which parses,
    /// analyzes and negotiates its own (deterministic, identical) treaty
    /// table. As with [`ThreadedCluster::register`], causal channel order
    /// makes an ack round unnecessary — a worker sees the `RegisterProgram`
    /// frame before any later submit from this thread. Returns the number
    /// of registered transactions (0 if the bundle is malformed or the
    /// roster is not a dense `0..n` prefix — the general protocol's rounds
    /// run over a dense site universe, so a cluster that has retired a
    /// low-numbered site must not take new program registrations).
    pub fn register_program(&mut self, bundle: &ProgramBundle) -> u64 {
        if self.roster.members != (0..self.roster.len()).collect::<Vec<_>>() {
            return 0;
        }
        let sites = self.engines.len();
        let count = match ProgramSet::from_bundle(bundle, sites) {
            Ok(set) => set.len() as u64,
            Err(_) => return 0,
        };
        let frame = Message::RegisterProgram {
            bundle: bundle.clone(),
        }
        .encode();
        for site in 0..sites {
            self.transport.send(CLIENT, site, frame.clone());
        }
        count
    }

    /// True when the counter has been registered.
    pub fn is_registered(&self, obj: &ObjId) -> bool {
        self.registered.contains(obj)
    }

    /// A client attachment for one site, usable from its own thread: load
    /// generators create one per site and drive them in parallel. At most
    /// one attachment per site should poll at a time (outcomes are drained
    /// to whichever poll completes first).
    pub fn client(&self, site: usize) -> ClusterClient {
        assert!(site < self.engines.len());
        ClusterClient {
            site,
            transport: self.transport.clone(),
            scratch: Vec::new(),
        }
    }

    /// Aggregate statistics: every worker's counters plus the
    /// registration-path negotiations.
    pub fn stats(&self) -> ReplicatedStats {
        let mut total = ReplicatedStats {
            negotiations: self.registration_negotiations,
            solver_micros_total: self.registration_solver_micros,
            ..ReplicatedStats::default()
        };
        for site in 0..self.engines.len() {
            let (tx, rx) = channel();
            self.transport.control(site, Control::Stats { reply: tx });
            let stats = rx.recv().expect("site worker terminated");
            total.local_commits += stats.local_commits;
            total.synchronizations += stats.synchronizations;
            total.negotiations += stats.negotiations;
            total.proactive_negotiations += stats.proactive_negotiations;
            total.solver_micros_total += stats.solver_micros_total;
        }
        total
    }

    /// Every site's rendered telemetry dump (Prometheus-style text), in
    /// site order.
    pub fn metrics(&self) -> Vec<String> {
        (0..self.engines.len())
            .map(|site| {
                let (tx, rx) = channel();
                self.transport.control(site, Control::Metrics { reply: tx });
                rx.recv().expect("site worker terminated")
            })
            .collect()
    }
}

impl SiteRuntime for ThreadedCluster {
    fn sites(&self) -> usize {
        self.engines.len()
    }

    fn engine(&self, site: usize) -> &Engine {
        &self.engines[site]
    }

    fn submit(&mut self, site: usize, op: SiteOp) {
        let frame = Message::encode_submit_into(std::slice::from_ref(&op), &mut self.scratch);
        self.transport.send(CLIENT, site, frame);
    }

    fn poll(&mut self, site: usize) -> Vec<OpOutcome> {
        let (tx, rx) = channel();
        self.transport.control(site, Control::Poll { reply: tx });
        rx.recv().expect("site worker terminated")
    }

    /// The batched path: the whole batch travels as **one** `Submit` frame
    /// (one encode straight from the borrowed slice, one channel send, one
    /// scheduling round on the worker) and one poll round-trip collects
    /// the outcomes.
    fn submit_batch(&mut self, site: usize, ops: &[SiteOp]) -> Vec<OpOutcome> {
        if ops.is_empty() {
            return Vec::new();
        }
        let frame = Message::encode_submit_into(ops, &mut self.scratch);
        self.transport.send(CLIENT, site, frame);
        self.poll(site)
    }

    fn synchronize(&mut self, site: usize) -> u64 {
        let (tx, rx) = channel();
        self.transport
            .control(site, Control::Synchronize { reply: tx });
        rx.recv().expect("site worker terminated")
    }

    fn ensure_registered(&mut self, obj: &ObjId, initial: i64, lower_bound: i64) {
        if !self.is_registered(obj) {
            self.register(obj.clone(), initial, lower_bound);
        }
    }
}

impl Drop for ThreadedCluster {
    fn drop(&mut self) {
        for site in 0..self.engines.len() {
            self.transport.control(site, Control::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A per-site client attachment (see [`ThreadedCluster::client`]).
pub struct ClusterClient {
    site: usize,
    transport: ChannelTransport,
    /// Per-connection frame-encode scratch ([`Message::encode_submit_into`]).
    scratch: Vec<u8>,
}

impl ClusterClient {
    /// The attached site.
    pub fn site(&self) -> usize {
        self.site
    }

    /// Submits an operation to the attached site's inbox.
    pub fn submit(&mut self, op: SiteOp) {
        let frame = Message::encode_submit_into(std::slice::from_ref(&op), &mut self.scratch);
        self.transport.send(CLIENT, self.site, frame);
    }

    /// Submits a whole batch of operations as one frame — the load
    /// generator's fast path (one encode straight from the borrowed slice
    /// + one channel send per batch).
    pub fn submit_batch(&mut self, ops: &[SiteOp]) {
        if ops.is_empty() {
            return;
        }
        let frame = Message::encode_submit_into(ops, &mut self.scratch);
        self.transport.send(CLIENT, self.site, frame);
    }

    /// Blocks until every submitted operation has completed and returns
    /// their outcomes (submission order).
    pub fn poll(&self) -> Vec<OpOutcome> {
        let (tx, rx) = channel();
        self.transport
            .control(self.site, Control::Poll { reply: tx });
        rx.recv().expect("site worker terminated")
    }
}

/// The per-site worker thread: drain every queued frame and control command
/// off the channel into one scheduling round, ship the worker's outbox
/// through the transport, and answer poll/synchronize once the worker
/// reaches the requested state.
///
/// Draining the whole inbox per round (one blocking `recv`, then `try_recv`
/// until empty) batches the outbox flush and the idle checks over however
/// much work has piled up, instead of paying them per frame. Outgoing
/// frames are encoded through one per-connection scratch buffer
/// ([`Message::encode_into`]), so a round's worth of sends costs one
/// exact-size allocation per frame and no body-buffer churn.
///
/// A worker spawned by [`ThreadedCluster::join`] starts with
/// `join = Some(contact)`: it fires its `JoinRequest` at the contact site
/// before serving anything else.
fn worker_loop(
    mut worker: SiteWorker,
    rx: Receiver<Input>,
    mut transport: ChannelTransport,
    join: Option<usize>,
) {
    let mut out = Vec::new();
    let mut scratch = Vec::new();
    let mut poll_replies: Vec<Sender<Vec<OpOutcome>>> = Vec::new();
    let mut sync_reply: Option<Sender<u64>> = None;
    if let Some(contact) = join {
        worker.begin_join(contact, "", None, &mut out);
        for (to, msg) in out.drain(..) {
            transport.send(worker.site(), to, msg.encode_into(&mut scratch));
        }
    }
    loop {
        let first = match rx.recv() {
            Ok(input) => input,
            Err(_) => return, // cluster dropped
        };
        let mut next = Some(first);
        while let Some(input) = next {
            match input {
                Input::Frame(from, frame) => {
                    let msg = Message::decode(&frame).expect("malformed frame on the wire");
                    worker.handle(from, msg, &mut out);
                }
                Input::Control(Control::Poll { reply }) => poll_replies.push(reply),
                Input::Control(Control::Synchronize { reply }) => {
                    worker.begin_full_sync(&mut out);
                    sync_reply = Some(reply);
                }
                Input::Control(Control::Stats { reply }) => {
                    let _ = reply.send(worker.stats);
                }
                Input::Control(Control::Metrics { reply }) => {
                    let _ = reply.send(worker.metrics_text());
                }
                Input::Control(Control::Roster { reply }) => {
                    let _ = reply.send(worker.roster().clone());
                }
                Input::Control(Control::Shutdown) => return,
            }
            next = rx.try_recv().ok();
        }
        for (to, msg) in out.drain(..) {
            transport.send(worker.site(), to, msg.encode_into(&mut scratch));
        }
        if worker.idle() && !poll_replies.is_empty() {
            let mut outcomes = Some(worker.take_completed());
            for reply in poll_replies.drain(..) {
                let _ = reply.send(outcomes.take().unwrap_or_default());
            }
        }
        if let Some(total) = worker.take_full_sync_result() {
            if let Some(reply) = sync_reply.take() {
                let _ = reply.send(total);
            }
        }
    }
}

/// The report of one [`threaded_load`] run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Worker threads (= sites) under load.
    pub sites: usize,
    /// Operations committed across all sites.
    pub committed: u64,
    /// Operations that required a synchronization round.
    pub synchronized: u64,
    /// Wall-clock duration of the measured phase, in seconds.
    pub elapsed_secs: f64,
    /// Committed operations per wall-clock second (all sites).
    pub throughput: f64,
}

/// The `--threads` load mode: `sites` worker threads, one client thread per
/// site, every client issuing `ops_per_site` seeded order transactions
/// against a shared set of counters. Real threads, real channels, real
/// wall-clock — the one measurement the virtual-clock simulator cannot
/// provide.
pub fn threaded_load(sites: usize, ops_per_site: usize, items: usize, seed: u64) -> LoadReport {
    assert!(sites > 0 && items > 0);
    let config = ClusterConfig::new(ReplicatedMode::EvenSplit);
    let mut cluster = ThreadedCluster::new(sites, config);
    let refill = 1_000;
    for item in 0..items {
        cluster.register(ObjId::new(format!("stock[{item}]")), refill, 1);
    }
    let started = std::time::Instant::now();
    let batch = 64usize;
    let results: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..sites)
            .map(|site| {
                let mut client = cluster.client(site);
                scope.spawn(move || {
                    let mut rng = DetRng::seed_from(seed ^ (site as u64).wrapping_mul(0x9E37));
                    let mut committed = 0u64;
                    let mut synchronized = 0u64;
                    let mut issued = 0usize;
                    let mut ops: Vec<SiteOp> = Vec::with_capacity(batch);
                    while issued < ops_per_site {
                        let n = batch.min(ops_per_site - issued);
                        // One frame per batch: the load generator pays one
                        // encode + one channel send for `n` operations.
                        ops.clear();
                        ops.extend((0..n).map(|_| SiteOp::Order {
                            obj: ObjId::new(format!("stock[{}]", rng.index(items))),
                            amount: 1,
                            refill_to: Some(refill - 1),
                        }));
                        client.submit_batch(&ops);
                        issued += n;
                        for outcome in client.poll() {
                            if outcome.committed {
                                committed += 1;
                            }
                            if outcome.synchronized {
                                synchronized += 1;
                            }
                        }
                    }
                    (committed, synchronized)
                })
            })
            .collect();
        clients
            .into_iter()
            .map(|h| h.join().expect("load client panicked"))
            .collect()
    });
    let elapsed_secs = started.elapsed().as_secs_f64();
    let committed: u64 = results.iter().map(|(c, _)| c).sum();
    let synchronized: u64 = results.iter().map(|(_, s)| s).sum();
    LoadReport {
        sites,
        committed,
        synchronized,
        elapsed_secs,
        throughput: committed as f64 / elapsed_secs.max(f64::MIN_POSITIVE),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_sim::Timer;

    fn stock(i: usize) -> ObjId {
        ObjId::new(format!("stock[{i}]"))
    }

    fn cluster(sites: usize) -> ThreadedCluster {
        ThreadedCluster::new(
            sites,
            ClusterConfig::new(ReplicatedMode::EvenSplit).with_timer(Timer::fixed_zero()),
        )
    }

    #[test]
    fn orders_execute_on_worker_threads_and_reach_the_engines() {
        let mut cluster = cluster(2);
        cluster.register(stock(0), 101, 1);
        for i in 0..10 {
            let out = cluster.execute(
                i % 2,
                SiteOp::Order {
                    obj: stock(0),
                    amount: 1,
                    refill_to: Some(100),
                },
            );
            assert!(out.committed);
        }
        // Engines really moved and the writes were WAL-logged.
        let total: i64 = (0..2)
            .map(|s| cluster.engine(s).peek(stock(0).as_str()))
            .sum();
        assert_eq!(total, 2 * 101 - 10);
        assert!(cluster.engine(0).wal_len() > 0);
        let stats = cluster.stats();
        assert_eq!(stats.local_commits, 10);
    }

    #[test]
    fn violations_synchronize_across_threads() {
        let mut cluster = cluster(2);
        cluster.register(stock(0), 11, 1);
        let mut synced = 0;
        for i in 0..30 {
            let out = cluster.execute(
                i % 2,
                SiteOp::Order {
                    obj: stock(0),
                    amount: 1,
                    refill_to: Some(10),
                },
            );
            assert!(out.committed, "op {i}");
            if out.synchronized {
                synced += 1;
                assert_eq!(out.comm_rounds, 2);
            }
        }
        assert!(synced > 0, "30 decrements over 10 headroom must sync");
        // The even split matches the demarcation maths: after a refill to
        // 10 with lower bound 1, each site gets (10-1)/2 = 4 decrements.
        assert!(cluster.stats().synchronizations >= synced);
    }

    #[test]
    fn batched_submits_poll_in_submission_order() {
        let mut cluster = cluster(3);
        cluster.register(stock(0), 100, 1);
        cluster.register(stock(1), 100, 1);
        for item in [0usize, 1, 0, 1] {
            cluster.submit(
                1,
                SiteOp::Order {
                    obj: stock(item),
                    amount: 1,
                    refill_to: Some(99),
                },
            );
        }
        let outcomes = cluster.poll(1);
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(|o| o.committed));
        assert!(cluster.poll(1).is_empty());
    }

    #[test]
    fn synchronize_folds_everything_and_all_sites_agree() {
        let mut cluster = cluster(3);
        for i in 0..5 {
            cluster.register(stock(i), 60, 1);
        }
        for i in 0..30 {
            let out = cluster.execute(
                i % 3,
                SiteOp::Order {
                    obj: stock(i % 5),
                    amount: 1,
                    refill_to: Some(59),
                },
            );
            assert!(out.committed);
        }
        cluster.synchronize(0);
        for i in 0..5 {
            let expected = cluster.value_at(0, &stock(i));
            for site in 1..3 {
                assert_eq!(cluster.value_at(site, &stock(i)), expected, "stock[{i}]");
            }
            assert_eq!(expected, 60 - 6, "each counter took 6 decrements");
        }
    }

    #[test]
    fn parallel_clients_drive_all_sites_concurrently() {
        let report = threaded_load(4, 300, 16, 7);
        assert_eq!(report.sites, 4);
        assert_eq!(report.committed, 4 * 300);
        assert!(report.throughput > 0.0);
    }

    #[test]
    fn threaded_cluster_matches_the_serial_oracle() {
        // The concurrency acid test: interleave order streams over real
        // threads, then check the folded state against the serial oracle
        // (every op either commits within its allowance or serializes
        // through its coordinator, so the logical value is order-free).
        let mut cluster = cluster(2);
        cluster.register(stock(0), 20, 1);
        let refill = 35;
        let mut rng = DetRng::seed_from(99);
        let mut serial = 20i64;
        for _ in 0..200 {
            let site = rng.index(2);
            let out = cluster.execute(
                site,
                SiteOp::Order {
                    obj: stock(0),
                    amount: 1,
                    refill_to: Some(refill - 1),
                },
            );
            assert!(out.committed);
            serial = if serial > 1 { serial - 1 } else { refill - 1 };
        }
        cluster.synchronize(0);
        assert_eq!(cluster.value_at(0, &stock(0)), serial);
        assert_eq!(cluster.value_at(1, &stock(0)), serial);
    }

    #[test]
    fn a_joined_site_serves_orders_and_conservation_holds() {
        let mut cluster = cluster(2);
        cluster.register(stock(0), 300, 0);
        for i in 0..40 {
            assert!(
                cluster
                    .execute(
                        i % 2,
                        SiteOp::Order {
                            obj: stock(0),
                            amount: 1,
                            refill_to: None,
                        },
                    )
                    .committed
            );
        }
        let joined = cluster.join();
        assert_eq!(joined, 2);
        assert_eq!(cluster.roster().members, vec![0, 1, 2]);
        assert_eq!(cluster.roster().epoch, 1);
        // The joiner took over a slice of the treaty and serves from it.
        for i in 0..30 {
            assert!(
                cluster
                    .execute(
                        i % 3,
                        SiteOp::Order {
                            obj: stock(0),
                            amount: 1,
                            refill_to: None,
                        },
                    )
                    .committed,
                "op {i} after join"
            );
        }
        cluster.synchronize(0);
        for site in 0..3 {
            assert_eq!(cluster.value_at(site, &stock(0)), 300 - 70, "site {site}");
        }
    }

    #[test]
    fn a_retired_site_folds_out_and_the_survivors_agree() {
        let mut cluster = cluster(3);
        cluster.register(stock(0), 120, 0);
        cluster.register(stock(1), 80, 0);
        for i in 0..30 {
            assert!(
                cluster
                    .execute(
                        i % 3,
                        SiteOp::Order {
                            obj: stock(i % 2),
                            amount: 1,
                            refill_to: None,
                        },
                    )
                    .committed
            );
        }
        cluster.leave(2);
        assert_eq!(cluster.roster().members, vec![0, 1]);
        // The retired site no-ops; survivors keep serving and agree.
        let retired = cluster.execute(
            2,
            SiteOp::Order {
                obj: stock(0),
                amount: 1,
                refill_to: None,
            },
        );
        assert!(!retired.committed);
        for i in 0..20 {
            assert!(
                cluster
                    .execute(
                        i % 2,
                        SiteOp::Order {
                            obj: stock(i % 2),
                            amount: 1,
                            refill_to: None,
                        },
                    )
                    .committed,
                "op {i} after leave"
            );
        }
        cluster.synchronize(0);
        let total: i64 = (0..2)
            .map(|obj| {
                let v = cluster.value_at(0, &stock(obj));
                assert_eq!(cluster.value_at(1, &stock(obj)), v);
                v
            })
            .sum();
        assert_eq!(total, 120 + 80 - 50, "no decrement lost in the handoff");
    }

    #[test]
    fn join_then_leave_returns_to_the_original_treaty_shape() {
        let mut cluster = cluster(2);
        cluster.register(stock(0), 500, 0);
        let joined = cluster.join();
        cluster.leave(joined);
        assert_eq!(cluster.roster().members, vec![0, 1]);
        assert_eq!(cluster.roster().epoch, 2);
        for i in 0..20 {
            assert!(
                cluster
                    .execute(
                        i % 2,
                        SiteOp::Order {
                            obj: stock(0),
                            amount: 1,
                            refill_to: None,
                        },
                    )
                    .committed
            );
        }
        cluster.synchronize(0);
        assert_eq!(cluster.value_at(0, &stock(0)), 480);
    }
}
