//! The redesigned single client surface of the cluster.
//!
//! Historically each backend grew its own client vocabulary: the threaded
//! cluster handed out [`crate::ClusterClient`] handles, the TCP backend a
//! [`crate::TcpClient`] per connection, and [`crate::ClusterRuntime`]
//! duplicated the cluster-wide conveniences as inherent methods. The
//! [`ClientApi`] trait collapses those into one surface:
//!
//! * the per-operation data plane (`submit_batch` / `poll` / `execute` /
//!   `value_at`) comes from the [`SiteRuntime`] supertrait every backend
//!   already implements;
//! * the control plane — counter registration, general `L++` program
//!   registration, full synchronization, statistics and telemetry — is
//!   defined here, once, and implemented by [`crate::ThreadedCluster`],
//!   [`crate::SimCluster`], [`crate::TcpCluster`] and the
//!   [`crate::ClusterRuntime`] wrapper.
//!
//! Code that previously matched on the backend (or monomorphized per
//! cluster type) can now take `&mut dyn ClientApi` and run unchanged over
//! threads, the deterministic fault injector, or real sockets:
//!
//! ```
//! use homeo_cluster::{ClientApi, ClusterConfig, ClusterRuntime};
//! use homeo_protocol::ReplicatedMode;
//! use homeo_runtime::SiteOp;
//! use homeo_lang::ids::ObjId;
//!
//! fn drain(api: &mut dyn ClientApi, obj: &ObjId) -> i64 {
//!     api.execute(0, SiteOp::Order { obj: obj.clone(), amount: 1, refill_to: None });
//!     api.sync_all();
//!     api.value_at(0, obj)
//! }
//!
//! let mut cluster = ClusterRuntime::threaded(2, ClusterConfig::new(ReplicatedMode::EvenSplit));
//! let obj = ObjId::new("stock[0]");
//! cluster.register_counter(obj.clone(), 10, 1);
//! assert_eq!(drain(&mut cluster, &obj), 9);
//! ```
//!
//! The per-connection handles ([`crate::ClusterClient`],
//! [`crate::TcpClient`]) remain available as the low-level wire surface —
//! they are what a remote process that does not own the cluster object
//! uses — but their cluster-wide conveniences are superseded by this
//! trait.

use homeo_lang::ids::ObjId;
use homeo_protocol::{ProgramBundle, ReplicatedStats};
use homeo_runtime::SiteRuntime;

use crate::{ClusterRuntime, SimCluster, TcpCluster, ThreadedCluster};

/// The unified cluster-wide client surface.
///
/// Everything a benchmark, scenario or test needs to drive a cluster:
/// the [`SiteRuntime`] data plane plus the registration / synchronization /
/// observability control plane. All methods are cluster-wide; per-site
/// operations take the site index through the supertrait.
pub trait ClientApi: SiteRuntime {
    /// Registers a replicated counter on every site and negotiates its
    /// first treaty split. Returns the solver time in microseconds.
    fn register_counter(&mut self, obj: ObjId, initial: i64, lower_bound: i64) -> u64;

    /// Registers a general `L++` program bundle cluster-wide: every site
    /// parses the source text, runs the same lang → analysis pipeline, and
    /// negotiates its own (deterministic, identical) treaty table, after
    /// which [`homeo_runtime::SiteOp::Transaction`] executes on any site.
    /// Returns the number of registered transactions (0 if rejected).
    fn register_program(&mut self, bundle: &ProgramBundle) -> u64;

    /// Runs a full synchronization round so every replica holds the
    /// authoritative folded state. Returns the solver time in microseconds.
    fn sync_all(&mut self) -> u64 {
        self.synchronize(0)
    }

    /// Aggregate protocol statistics across every site.
    fn stats(&self) -> ReplicatedStats;

    /// Every site's rendered telemetry dump (the Prometheus-style text a
    /// live node serves for metrics requests), in site order. A site that
    /// is currently down renders as an empty string.
    fn metrics_text(&self) -> Vec<String>;
}

impl ClientApi for ThreadedCluster {
    fn register_counter(&mut self, obj: ObjId, initial: i64, lower_bound: i64) -> u64 {
        self.register(obj, initial, lower_bound)
    }

    fn register_program(&mut self, bundle: &ProgramBundle) -> u64 {
        ThreadedCluster::register_program(self, bundle)
    }

    fn stats(&self) -> ReplicatedStats {
        ThreadedCluster::stats(self)
    }

    fn metrics_text(&self) -> Vec<String> {
        self.metrics()
    }
}

impl ClientApi for SimCluster {
    fn register_counter(&mut self, obj: ObjId, initial: i64, lower_bound: i64) -> u64 {
        self.register(obj, initial, lower_bound)
    }

    fn register_program(&mut self, bundle: &ProgramBundle) -> u64 {
        SimCluster::register_program(self, bundle)
    }

    fn stats(&self) -> ReplicatedStats {
        SimCluster::stats(self)
    }

    fn metrics_text(&self) -> Vec<String> {
        SimCluster::metrics_text(self)
    }
}

impl ClientApi for TcpCluster {
    fn register_counter(&mut self, obj: ObjId, initial: i64, lower_bound: i64) -> u64 {
        self.register(obj, initial, lower_bound)
    }

    fn register_program(&mut self, bundle: &ProgramBundle) -> u64 {
        TcpCluster::register_program(self, bundle)
    }

    fn stats(&self) -> ReplicatedStats {
        TcpCluster::stats(self)
    }

    fn metrics_text(&self) -> Vec<String> {
        self.metrics()
            .into_iter()
            .map(Option::unwrap_or_default)
            .collect()
    }
}

impl ClientApi for ClusterRuntime {
    fn register_counter(&mut self, obj: ObjId, initial: i64, lower_bound: i64) -> u64 {
        self.register(obj, initial, lower_bound)
    }

    fn register_program(&mut self, bundle: &ProgramBundle) -> u64 {
        ClusterRuntime::register_program(self, bundle)
    }

    fn stats(&self) -> ReplicatedStats {
        ClusterRuntime::stats(self)
    }

    fn metrics_text(&self) -> Vec<String> {
        ClusterRuntime::metrics_text(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterConfig, SimNetConfig};
    use homeo_lang::{programs, Database};
    use homeo_protocol::{Loc, ReplicatedMode};
    use homeo_runtime::SiteOp;
    use homeo_sim::Timer;

    fn backends(sites: usize) -> Vec<(&'static str, Box<dyn ClientApi>)> {
        let config =
            || ClusterConfig::new(ReplicatedMode::EvenSplit).with_timer(Timer::fixed_zero());
        vec![
            (
                "threaded",
                Box::new(ThreadedCluster::new(sites, config())) as Box<dyn ClientApi>,
            ),
            (
                "sim",
                Box::new(SimCluster::new(
                    sites,
                    config(),
                    SimNetConfig::reliable(sites, 100),
                )),
            ),
            ("tcp", Box::new(TcpCluster::new(sites, config()))),
        ]
    }

    #[test]
    fn the_unified_surface_drives_every_backend() {
        // One generic loop: counter registration, program registration,
        // both op kinds, a sync round, stats and telemetry — all through
        // `dyn ClientApi`, no backend-specific code.
        let obj = homeo_lang::ids::ObjId::new("stock[9]");
        let loc = Loc::from_pairs([(programs::stock_obj(0), 0usize)]);
        let initial = Database::from_pairs([(programs::stock_obj(0), 7i64)]);
        let bundle = ProgramBundle::from_transactions(
            &[programs::micro_order_for_item(0, 12)],
            &loc,
            &initial,
            None,
        );
        for (label, mut api) in backends(2) {
            assert_eq!(api.register_counter(obj.clone(), 10, 1), 0, "{label}");
            assert_eq!(api.register_program(&bundle), 1, "{label}");
            let out = api.execute(
                0,
                SiteOp::Order {
                    obj: obj.clone(),
                    amount: 1,
                    refill_to: None,
                },
            );
            assert!(out.committed, "{label}: counter order");
            let out = api.execute(0, SiteOp::Transaction { index: 0 });
            assert!(out.committed && !out.unsupported, "{label}: general txn");
            api.sync_all();
            assert_eq!(api.value_at(0, &obj), 9, "{label}: counter state");
            assert_eq!(
                api.value_at(0, &programs::stock_obj(0)),
                6,
                "{label}: general state"
            );
            assert!(api.stats().local_commits >= 1, "{label}: stats");
            let metrics = api.metrics_text();
            assert_eq!(metrics.len(), 2, "{label}: metrics per site");
            assert!(
                metrics.iter().all(|m| m.contains("homeo_")),
                "{label}: telemetry text"
            );
        }
    }
}
