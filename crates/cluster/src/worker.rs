//! The per-site protocol state machine.
//!
//! A [`SiteWorker`] is everything one site knows: its engine (the only
//! durable state), its treaty metadata, its client inbox and its role in any
//! in-flight synchronization rounds. It is a *pure message-passing state
//! machine*: every entry point takes an [`Outbox`] and pushes the frames the
//! site wants delivered; it never blocks and never touches another site's
//! state. The threaded backend pumps one worker per OS thread off an `mpsc`
//! receiver; the simulation backend pumps the same workers off a virtual
//! clock — identical protocol logic under both schedulers.
//!
//! # The synchronization protocol
//!
//! Within its treaty a site commits locally (one engine transaction, 2PL +
//! WAL, no messages). A treaty violation routes to the counter's
//! *coordinator* — the site `shard_hash(obj) % sites`, aligning sync routing
//! with shard placement — which serializes rounds per counter:
//!
//! 1. `SyncRequest` (origin → coordinator) carries the violating operation.
//! 2. `DeltaRequest` / `DeltaReply`: every peer reports `value − base` and
//!    *freezes* the counter (client operations on it stall) so no committed
//!    delta can be lost between the fold and the install.
//! 3. The coordinator applies the operation to the folded value,
//!    renegotiates allowances ([`negotiate_allowances_cached`]), and broadcasts
//!    `Install`; peers rebase, unfreeze and ack.
//! 4. When every ack is in, `SyncDone` reports the outcome to the origin
//!    and the next queued round for that counter starts.
//!
//! The ack barrier means at most one round is ever in flight per counter,
//! which keeps the protocol correct under arbitrary cross-pair reordering.
//!
//! # Elastic membership: the epoch-roster rules
//!
//! The cluster's member set is dynamic. Membership state lives in two
//! places with two different consistency regimes:
//!
//! * **Per counter** ([`CounterMeta::members`]): the sites sharing the
//!   counter, which define its coordinator (`members[shard_hash % len]`)
//!   and its allowance split. A counter's member list changes **only**
//!   through a [`SyncKind::Handoff`] round issued to its current
//!   coordinator — the round freezes the counter, folds the current
//!   members' deltas, re-splits the allowances over the new members
//!   (reusing the warm-start negotiation cache) and installs the new meta
//!   to the union of old and new members under the usual ack barrier. Per
//!   counter, the coordinator therefore moves atomically; requests that
//!   race the move are forwarded (the `SyncRequest` carries its origin for
//!   exactly this) and delta requests that arrive under a foreign freeze
//!   are deferred until the install lands.
//! * **Cluster-wide** ([`Roster`]): an epoch-stamped member list. The
//!   *membership coordinator* (`roster.members[0]`) serializes changes:
//!   on `JoinRequest` it acks the joiner first (roster, peer addresses,
//!   program bundle), then issues one handoff per registered counter, and
//!   only when every handoff's `SyncDone` is in does it broadcast
//!   `MembershipInstall` with the epoch-bumped roster. Receivers adopt a
//!   roster iff its epoch is strictly newer; members missing from an
//!   adopted roster are **evicted** — every frame from them except a
//!   rejoin `JoinRequest` is dropped. A retired site keeps its counter
//!   metadata purely for routing (it is no longer in any member list, so
//!   its local operations complete as uncommitted no-ops and its stale
//!   state is never folded). WAL recovery replays into the *current*
//!   epoch: the `StateReply` a restarted site recovers from carries the
//!   buddy's roster.
//!
//! General-transaction programs are pinned to the membership they were
//! registered at (their home mapping is derived from the site count at
//! registration): joiners receive the program source through `JoinAck` and
//! replay it, and a founding member that hosts program homes is refused
//! retirement while programs are registered.
//!
//! # Crash model
//!
//! Fail-stop with recovery (simulation backend only): a killed site loses
//! everything but its WAL. On restart the engine is reopened from the log
//! frame ([`homeo_store::Engine::reopen_from_frame`]) and the treaty
//! metadata is refetched from a live peer (`StateRequest` / `StateReply`) —
//! the paper's "all in-memory state can be recomputed after failure
//! recovery" stance. Until the state transfer completes the worker defers
//! every incoming frame, so stale rounds settle before new work starts.
//! Sites are killed between coordination rounds (fail-stop, not
//! fail-mid-commit): the harness asserts the victim coordinates no active
//! round, which the head-of-line client queue makes the common state.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use homeo_lang::database::Database;
use homeo_lang::ids::ObjId;
use homeo_protocol::exec::run_on_engine;
use homeo_protocol::{
    negotiate_allowances_cached, NegotiationCache, ProgramBundle, ProgramSet, ReplicatedMode,
    ReplicatedStats, Roster, SyncTuning, WorkloadHints,
};
use homeo_runtime::{coordinator_of, OpOutcome, SiteOp};
use homeo_sim::{Stopwatch, Timer};
use homeo_store::{Engine, EngineError};
use homeo_telemetry::{HistId, Registry};

use crate::msg::{CounterMeta, Message, SyncKind};

/// Frames a worker wants delivered: `(destination site, message)` pairs,
/// appended in send order. The owning backend encodes and ships them.
pub type Outbox = Vec<(usize, Message)>;

/// The coordinator of general-transaction rounds. Counter rounds shard
/// their coordinator by object hash, but a general round folds the *whole*
/// program database (its treaties are joint over all sites' objects), so
/// every general round serializes through one fixed site.
pub const GENERAL_COORDINATOR: usize = 0;

/// Treaty state of one counter as one site knows it. `members` (sorted)
/// defines both the coordinator (`members[shard_hash % len]`) and the
/// meaning of `allowances` (parallel to `members`); a non-member site may
/// still hold the state purely for routing.
#[derive(Debug, Clone)]
struct CounterState {
    base: i64,
    lower_bound: i64,
    members: Vec<usize>,
    allowances: Vec<i64>,
}

impl CounterState {
    /// The allowance of `site`, if it is a member of this counter.
    fn allowance_of(&self, site: usize) -> Option<i64> {
        self.members
            .binary_search(&site)
            .ok()
            .map(|at| self.allowances[at])
    }
}

/// One synchronization round this site is coordinating.
#[derive(Debug)]
struct ActiveRound {
    sync: u64,
    origin: usize,
    req: u64,
    kind: SyncKind,
    /// The counter's member set when the round started — the sites whose
    /// deltas the fold collects. Pinned here so a concurrent metadata change
    /// can never move the round's goalposts.
    participants: Vec<usize>,
    /// The install/ack-barrier targets, filled at install time. For an
    /// ordinary round this is `participants` minus self; a handoff installs
    /// to the union of old and new members so departing sites learn they
    /// are out and arriving sites receive the treaty.
    install_to: Vec<usize>,
    deltas: BTreeMap<usize, i64>,
    acks: BTreeSet<usize>,
    /// Filled at install time, reported with the final `SyncDone`.
    outcome: Option<(bool, u64, bool)>, // (refilled, solver_micros, folded)
    /// Started when the round began (the delta-collection phase).
    started: Stopwatch,
    /// Started when the install broadcast went out (the ack-barrier phase).
    install_started: Option<Stopwatch>,
}

/// A queued membership change, serialized through the membership
/// coordinator one at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MembershipOp {
    Join { site: usize },
    Leave { site: usize },
}

/// The membership change currently in flight at the membership coordinator:
/// the epoch-bumped roster it will commit, and the per-counter handoff
/// rounds whose `SyncDone`s are still outstanding.
#[derive(Debug)]
struct MembershipChange {
    roster: Roster,
    pending: BTreeSet<u64>,
}

/// Pre-registered [`Registry`] handles for the worker's own metrics: the
/// synchronization round broken into its phases (delta collection, solver,
/// install/ack barrier, whole round), split violation-driven vs proactive;
/// the freeze window participants spend inside peer-coordinated rounds; and
/// the client-batch size distribution.
#[derive(Debug, Clone, Copy)]
struct PhaseMetrics {
    violation_collect: HistId,
    violation_solve: HistId,
    violation_install: HistId,
    violation_round: HistId,
    proactive_collect: HistId,
    proactive_solve: HistId,
    proactive_install: HistId,
    proactive_round: HistId,
    freeze: HistId,
    batch_ops: HistId,
}

impl PhaseMetrics {
    fn register(reg: &mut Registry) -> Self {
        PhaseMetrics {
            violation_collect: reg.histogram("homeo_sync_violation_collect_micros"),
            violation_solve: reg.histogram("homeo_sync_violation_solve_micros"),
            violation_install: reg.histogram("homeo_sync_violation_install_micros"),
            violation_round: reg.histogram("homeo_sync_violation_round_micros"),
            proactive_collect: reg.histogram("homeo_sync_proactive_collect_micros"),
            proactive_solve: reg.histogram("homeo_sync_proactive_solve_micros"),
            proactive_install: reg.histogram("homeo_sync_proactive_install_micros"),
            proactive_round: reg.histogram("homeo_sync_proactive_round_micros"),
            freeze: reg.histogram("homeo_sync_freeze_micros"),
            batch_ops: reg.histogram("homeo_submit_batch_ops"),
        }
    }

    fn collect(&self, proactive: bool) -> HistId {
        if proactive {
            self.proactive_collect
        } else {
            self.violation_collect
        }
    }

    fn solve(&self, proactive: bool) -> HistId {
        if proactive {
            self.proactive_solve
        } else {
            self.violation_solve
        }
    }

    fn install(&self, proactive: bool) -> HistId {
        if proactive {
            self.proactive_install
        } else {
            self.violation_install
        }
    }

    fn round(&self, proactive: bool) -> HistId {
        if proactive {
            self.proactive_round
        } else {
            self.violation_round
        }
    }
}

/// A sync request queued behind the counter's active round.
#[derive(Debug)]
struct QueuedRequest {
    origin: usize,
    req: u64,
    kind: SyncKind,
}

/// A general-transaction synchronization queued behind the active round.
#[derive(Debug)]
struct QueuedProgramSync {
    origin: usize,
    req: u64,
    /// The violating transaction to re-run everywhere after the fold
    /// (`None` for a pure resynchronization).
    txn: Option<u64>,
}

/// One general-transaction round this site (the [`GENERAL_COORDINATOR`]) is
/// coordinating: freeze → fold every site's local program objects → install
/// the authoritative database + deterministic re-run + lockstep
/// renegotiation → ack barrier → `SyncDone` to the origin.
#[derive(Debug)]
struct GeneralRound {
    sync: u64,
    origin: usize,
    req: u64,
    txn: Option<u64>,
    /// Per-site authoritative values of the objects located at that site.
    values: BTreeMap<usize, Vec<(ObjId, i64)>>,
    acks: BTreeSet<usize>,
    /// The coordinator's own solver time, reported with the `SyncDone`.
    solver_micros: u64,
    started: Stopwatch,
}

/// An in-progress `synchronize()` (fold of every registered counter).
#[derive(Debug)]
struct FullSync {
    pending: BTreeSet<u64>,
    solver_micros: u64,
    complete: bool,
}

/// The state machine of one site.
pub struct SiteWorker {
    site: usize,
    sites: usize,
    mode: ReplicatedMode,
    hints: WorkloadHints,
    timer: Timer,
    engine: Arc<Engine>,
    /// Synchronization-round cost knobs (warm starts, proactive control).
    tuning: SyncTuning,
    /// Memoized treaty templates + solver scratch for coordinator rounds.
    cache: NegotiationCache,
    /// Per-site consumption EWMA, updated from each coordinated round's
    /// delta fold (coordinator-side state; only meaningful when
    /// `tuning.adaptive` is set).
    demand: Vec<f64>,
    /// Hints rebuilt from `demand` before each adaptive negotiation.
    adaptive_hints: WorkloadHints,
    /// Counters with a fire-and-forget proactive round outstanding from
    /// this site (cleared when the round's install lands).
    proactive_inflight: BTreeSet<ObjId>,
    counters: BTreeMap<ObjId, CounterState>,
    /// Counters frozen by an in-flight round (value of the map: round id).
    frozen: BTreeMap<ObjId, u64>,
    /// The cluster roster this site last adopted (see the epoch-roster rules
    /// in the module docs).
    roster: Roster,
    /// Sites that disappeared between two adopted rosters. Every frame from
    /// an evicted site except a rejoin `JoinRequest` is dropped.
    evicted: BTreeSet<usize>,
    /// Dropped stale-epoch frames (frames from evicted members), exposed so
    /// the stress tests can assert the rejection actually happened.
    pub stale_rejects: u64,
    /// Peer dial addresses by site id (`""` = unknown). Only the TCP
    /// backend reads these; they travel in the membership frames so a
    /// joiner learns where the cluster lives and vice versa.
    peer_addrs: Vec<String>,
    /// True from `new_joining` until the `JoinAck` arrives; every other
    /// frame is deferred to `recovery_backlog` meanwhile.
    joining: bool,
    /// Delta requests for counters this site does not know yet (a joiner
    /// racing its first installs) or that are frozen by a *different* round
    /// (the handoff ack-barrier window). Retried after every install.
    deferred: VecDeque<(usize, Message)>,
    /// Membership-coordinator duties: one change in flight, the rest queued.
    membership: Option<MembershipChange>,
    membership_queue: VecDeque<MembershipOp>,
    /// The site universe general-transaction programs were registered at
    /// (`max member + 1` at registration time). General rounds are pinned to
    /// it: their home mapping, collect set and ack barrier never follow the
    /// roster, so registration-era members answer program frames even after
    /// unrelated sites join.
    program_sites: usize,
    /// The registered bundle, kept verbatim so `JoinAck` can ship program
    /// source to a joiner.
    program_bundle: Option<ProgramBundle>,
    /// The registered general-transaction programs (`None` until a
    /// `RegisterProgram` arrives). Each site derives its own copy from the
    /// program sources and keeps it in lockstep through the install rounds —
    /// treaties never travel the wire.
    programs: Option<ProgramSet>,
    /// General-transaction execution frozen by an in-flight program round
    /// (or by a restart, until the post-recovery resynchronization lands).
    general_frozen: bool,
    /// Coordinator duties for general rounds ([`GENERAL_COORDINATOR`] only):
    /// one round at a time, the rest queued.
    general_active: Option<GeneralRound>,
    general_backlog: VecDeque<QueuedProgramSync>,
    /// Client inbox; executed strictly in submission order (head-of-line).
    queue: VecDeque<SiteOp>,
    /// Outcomes of completed operations, in submission order.
    completed: Vec<OpOutcome>,
    /// Request id of the head operation awaiting its `SyncDone`.
    waiting: Option<u64>,
    /// Coordinator duties: one active round per counter, the rest queued.
    active: BTreeMap<ObjId, ActiveRound>,
    backlog: BTreeMap<ObjId, VecDeque<QueuedRequest>>,
    full_sync: Option<FullSync>,
    next_req: u64,
    next_sync: u64,
    /// While `true` (post-restart), every frame is deferred to
    /// `recovery_backlog` until the `StateReply` arrives.
    recovering: bool,
    recovery_backlog: VecDeque<(usize, Message)>,
    /// Aggregate statistics (local commits, synchronizations this site
    /// coordinated, negotiations this site ran).
    pub stats: ReplicatedStats,
    /// Per-site telemetry: sync-phase latency histograms and batch sizes
    /// live here, and the owning transport (the epoll reactor) registers its
    /// frame/byte metrics into the same registry so one `MetricsRequest`
    /// answers for the whole site.
    pub metrics: Registry,
    /// Handles into `metrics` for the worker's own families.
    phase_ids: PhaseMetrics,
    /// Participant-side freeze stopwatches (`DeltaRequest` → `Install`),
    /// kept beside `frozen` so the freeze map itself stays untouched.
    freeze_started: BTreeMap<ObjId, Stopwatch>,
}

impl SiteWorker {
    /// Creates the worker for `site` of `sites`, owning `engine`.
    pub fn new(
        site: usize,
        sites: usize,
        mode: ReplicatedMode,
        hints: WorkloadHints,
        timer: Timer,
        engine: Arc<Engine>,
    ) -> Self {
        assert!(site < sites);
        assert_eq!(hints.site_weights.len(), sites);
        let adaptive_hints = hints.clone();
        let mut metrics = Registry::new();
        let phase_ids = PhaseMetrics::register(&mut metrics);
        SiteWorker {
            site,
            sites,
            mode,
            hints,
            timer,
            engine,
            tuning: SyncTuning::default(),
            cache: NegotiationCache::new(),
            demand: vec![0.0; sites],
            adaptive_hints,
            proactive_inflight: BTreeSet::new(),
            counters: BTreeMap::new(),
            frozen: BTreeMap::new(),
            roster: Roster::founding(sites),
            evicted: BTreeSet::new(),
            stale_rejects: 0,
            peer_addrs: Vec::new(),
            joining: false,
            deferred: VecDeque::new(),
            membership: None,
            membership_queue: VecDeque::new(),
            program_sites: 0,
            program_bundle: None,
            programs: None,
            general_frozen: false,
            general_active: None,
            general_backlog: VecDeque::new(),
            queue: VecDeque::new(),
            completed: Vec::new(),
            waiting: None,
            active: BTreeMap::new(),
            backlog: BTreeMap::new(),
            full_sync: None,
            next_req: 0,
            next_sync: 0,
            recovering: false,
            recovery_backlog: VecDeque::new(),
            stats: ReplicatedStats::default(),
            metrics,
            phase_ids,
            freeze_started: BTreeMap::new(),
        }
    }

    /// Creates a worker that is not (yet) part of any cluster: its roster is
    /// itself alone, and every frame except the `JoinAck` answering
    /// [`SiteWorker::begin_join`] is deferred until the join resolves.
    /// `expected_amount` seeds the workload hints the site will negotiate
    /// with once it owns counter shards.
    pub fn new_joining(
        site: usize,
        mode: ReplicatedMode,
        expected_amount: i64,
        timer: Timer,
        engine: Arc<Engine>,
    ) -> Self {
        let sites = site + 1;
        let mut hints = WorkloadHints::uniform(sites);
        hints.expected_amount = expected_amount;
        let mut worker = SiteWorker::new(site, sites, mode, hints, timer, engine);
        worker.roster = Roster::lone(site);
        worker.joining = true;
        worker
    }

    /// Replaces the synchronization tuning (builder style).
    pub fn with_tuning(mut self, tuning: SyncTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Records peer dial addresses (builder style; TCP backend).
    pub fn with_peer_addrs(mut self, addrs: &[String]) -> Self {
        self.record_addrs(addrs);
        self
    }

    /// This worker's site id.
    pub fn site(&self) -> usize {
        self.site
    }

    /// The site's storage engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The coordinator of a counter: over the counter's own member list when
    /// the treaty is known here, over the current roster otherwise. With the
    /// founding roster this is the historical `shard_hash(obj) % sites`.
    pub fn coordinator(&self, obj: &ObjId) -> usize {
        match self.counters.get(obj) {
            Some(state) => coordinator_of(obj, &state.members),
            None => self.roster.coordinator_of(homeo_runtime::shard_hash(obj)),
        }
    }

    /// The cluster roster this site last adopted.
    pub fn roster(&self) -> &Roster {
        &self.roster
    }

    /// True while the worker waits for the `JoinAck` of a
    /// [`SiteWorker::begin_join`].
    pub fn joining(&self) -> bool {
        self.joining
    }

    /// The known dial address of a peer site, if any (TCP backend).
    pub fn peer_addr(&self, site: usize) -> Option<&str> {
        self.peer_addrs
            .get(site)
            .map(String::as_str)
            .filter(|addr| !addr.is_empty())
    }

    /// True when no membership change is in flight or queued at this site.
    pub fn membership_idle(&self) -> bool {
        self.membership.is_none() && self.membership_queue.is_empty()
    }

    /// True when every submitted operation has completed.
    pub fn idle(&self) -> bool {
        self.queue.is_empty() && self.waiting.is_none()
    }

    /// True while the worker is waiting for its post-restart `StateReply`
    /// (every other frame is deferred meanwhile). Poll answers and full
    /// folds must wait this out: deferred submits are invisible to
    /// [`SiteWorker::idle`], so an early poll would report an empty batch.
    pub fn recovering(&self) -> bool {
        self.recovering
    }

    /// True when this site coordinates no in-flight round (the precondition
    /// for a fail-stop kill in the simulation backend).
    pub fn quiescent_coordinator(&self) -> bool {
        self.active.is_empty()
            && self.general_active.is_none()
            && self.general_backlog.is_empty()
            && self.membership_idle()
    }

    /// True when this site is not frozen inside any peer-coordinated round
    /// (the other half of the fail-stop-between-rounds precondition: a
    /// frozen participant has reported a delta that the round's `Install`
    /// will rebase, so killing it mid-round could let that install land
    /// after recovery and silently erase a post-restart commit).
    pub fn quiescent_participant(&self) -> bool {
        self.frozen.is_empty() && !self.general_frozen
    }

    /// Installs a counter's treaty metadata directly (registration).
    pub fn install_counter(&mut self, meta: CounterMeta) {
        self.counters.insert(
            meta.obj,
            CounterState {
                base: meta.base,
                lower_bound: meta.lower_bound,
                members: meta.members,
                allowances: meta.allowances,
            },
        );
    }

    /// True when the counter's treaty is known to this site.
    pub fn knows_counter(&self, obj: &ObjId) -> bool {
        self.counters.contains_key(obj)
    }

    /// The registered general-transaction programs, if any.
    pub fn programs(&self) -> Option<&ProgramSet> {
        self.programs.as_ref()
    }

    /// Registers a program bundle on this site: parse the sources, run the
    /// one-time symbolic analysis, write the initial values of objects this
    /// engine does not hold yet (WAL-covered), and negotiate the round-0
    /// treaties from the bundle's initial database — the same database every
    /// other site negotiates from, so the cluster starts in lockstep.
    ///
    /// Returns the number of registered transactions; `0` when the bundle is
    /// malformed (wire input is untrusted — a bad bundle never panics).
    /// Re-registering an identical bundle is an idempotent ack; a different
    /// bundle replaces the set wholesale.
    pub fn register_program(&mut self, bundle: &ProgramBundle) -> u64 {
        let universe = self.roster.members.last().map_or(self.sites, |m| m + 1);
        self.register_program_at(bundle, universe)
    }

    /// [`SiteWorker::register_program`] with an explicit site universe: the
    /// join path pins a joiner's program home mapping to the universe the
    /// cluster registered at (carried in the `JoinAck`), so every member
    /// derives the identical mapping regardless of when it arrived.
    fn register_program_at(&mut self, bundle: &ProgramBundle, universe: usize) -> u64 {
        if let Some(existing) = &self.programs {
            if existing.sources() == bundle.sources.as_slice() && self.program_sites == universe {
                return existing.len() as u64;
            }
        }
        let mut set = match ProgramSet::from_bundle(bundle, universe) {
            Ok(set) => set,
            Err(_) => return 0,
        };
        let held = self.engine.snapshot();
        for (obj, value) in &bundle.initial {
            if !held.contains_key(obj.as_str()) {
                self.engine
                    .write_logged(obj.as_str(), *value)
                    .expect("registration write runs between local transactions");
            }
        }
        let initial = Database::from_pairs(bundle.initial.iter().cloned());
        let solver_micros = set.negotiate(&initial, self.timer);
        self.stats.negotiations += 1;
        self.stats.solver_micros_total += solver_micros;
        let count = set.len() as u64;
        self.programs = Some(set);
        self.program_sites = universe;
        self.program_bundle = Some(bundle.clone());
        count
    }

    /// The synchronized base this site holds for a counter, if known.
    pub fn counter_base(&self, obj: &ObjId) -> Option<i64> {
        self.counters.get(obj).map(|state| state.base)
    }

    /// The member sites of a counter's treaty, per this site's metadata
    /// (sorted ascending), if the counter is known.
    pub fn counter_members(&self, obj: &ObjId) -> Option<&[usize]> {
        self.counters.get(obj).map(|state| state.members.as_slice())
    }

    /// Drains the outcomes of completed operations (submission order).
    pub fn take_completed(&mut self) -> Vec<OpOutcome> {
        std::mem::take(&mut self.completed)
    }

    // ------------------------------------------------------------------
    // Client surface
    // ------------------------------------------------------------------

    /// Enqueues a client operation and pumps the queue.
    pub fn submit(&mut self, op: SiteOp, out: &mut Outbox) {
        self.queue.push_back(op);
        self.pump(out);
    }

    /// Enqueues a whole batch of client operations and pumps the queue
    /// **once** — the batched scheduling round. Within-treaty operations in
    /// the batch commit back to back without re-entering the scheduler;
    /// the first stalled operation (frozen counter or in-flight sync)
    /// leaves the rest queued, exactly as per-operation submission would.
    pub fn submit_batch(&mut self, ops: impl IntoIterator<Item = SiteOp>, out: &mut Outbox) {
        let before = self.queue.len();
        self.queue.extend(ops);
        let added = (self.queue.len() - before) as u64;
        self.metrics.observe(self.phase_ids.batch_ops, added);
        self.pump(out);
    }

    /// Renders the site's full telemetry dump (the `MetricsReply` payload):
    /// the registry — phase histograms, batch sizes, plus whatever the
    /// owning transport registered — followed by counter lines derived from
    /// the aggregate [`ReplicatedStats`], which stay the single source of
    /// truth so no hot path counts anything twice.
    pub fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let mut text = self.metrics.render();
        for (name, value) in [
            ("homeo_local_commits_total", self.stats.local_commits),
            ("homeo_synchronizations_total", self.stats.synchronizations),
            ("homeo_negotiations_total", self.stats.negotiations),
            (
                "homeo_proactive_negotiations_total",
                self.stats.proactive_negotiations,
            ),
            ("homeo_solver_micros_total", self.stats.solver_micros_total),
        ] {
            let _ = writeln!(text, "# TYPE {name} counter");
            let _ = writeln!(text, "{name} {value}");
        }
        text
    }

    /// Starts a fold of every registered counter (the message-passing form
    /// of `SiteRuntime::synchronize`). The result is available through
    /// [`SiteWorker::take_full_sync_result`] once every per-counter round
    /// reports back.
    ///
    /// # Panics
    /// Panics if a full synchronization is already in flight.
    pub fn begin_full_sync(&mut self, out: &mut Outbox) {
        assert!(
            self.full_sync.is_none(),
            "a full synchronization is already in flight"
        );
        let objs: Vec<ObjId> = self.counters.keys().cloned().collect();
        let mut pending = BTreeSet::new();
        for obj in objs {
            let req = self.fresh_req();
            pending.insert(req);
            out.push((
                self.coordinator(&obj),
                Message::SyncRequest {
                    origin: self.site as u64,
                    req,
                    obj,
                    kind: SyncKind::Fold,
                },
            ));
        }
        if self.programs.is_some() {
            // Fold the general-transaction database too: a full
            // synchronization covers every protocol path the site runs.
            let req = self.fresh_req();
            pending.insert(req);
            out.push((GENERAL_COORDINATOR, Message::ProgramSync { req, txn: None }));
        }
        let complete = pending.is_empty();
        self.full_sync = Some(FullSync {
            pending,
            solver_micros: 0,
            complete,
        });
    }

    /// The total solver time of a completed full synchronization, if one
    /// has finished since the last call.
    pub fn take_full_sync_result(&mut self) -> Option<u64> {
        if self.full_sync.as_ref().is_some_and(|fs| fs.complete) {
            self.full_sync.take().map(|fs| fs.solver_micros)
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Frame handling
    // ------------------------------------------------------------------

    /// Handles one delivered frame.
    pub fn handle(&mut self, from: usize, msg: Message, out: &mut Outbox) {
        if self.joining {
            // Until the JoinAck resolves, this site has no roster, no
            // counters and no program set: everything else waits.
            if let Message::JoinAck {
                ok,
                roster,
                addrs,
                program,
            } = msg
            {
                self.finish_join(ok, roster, &addrs, program, out);
            } else {
                self.recovery_backlog.push_back((from, msg));
            }
            return;
        }
        if self.recovering {
            if let Message::StateReply { counters, roster } = msg {
                self.finish_recovery(counters, roster, out);
            } else {
                self.recovery_backlog.push_back((from, msg));
            }
            return;
        }
        if self.evicted.contains(&from) && !matches!(msg, Message::JoinRequest { .. }) {
            // A frame from a member evicted by a committed roster: its
            // treaty state is from a dead epoch. Only a rejoin request may
            // pass.
            self.stale_rejects += 1;
            return;
        }
        match msg {
            Message::Submit { ops } => self.submit_batch(ops, out),
            Message::Register { meta } => {
                self.install_counter(meta);
                self.drain_deferred(out);
            }
            Message::SyncRequest {
                origin,
                req,
                obj,
                kind,
            } => self.on_sync_request(origin as usize, req, obj, kind, out),
            Message::DeltaRequest { sync, obj } => {
                let foreign_freeze = self.frozen.get(&obj).is_some_and(|held| *held != sync);
                let Some(meta) = self.counters.get(&obj) else {
                    // A joiner can be asked for a delta before its first
                    // install of the counter lands: defer, retry after
                    // installs. (Also absorbs hostile requests for never-
                    // registered counters without tearing the site down.)
                    self.deferred
                        .push_back((from, Message::DeltaRequest { sync, obj }));
                    return;
                };
                if foreign_freeze {
                    // Frozen by a *different* round (the handoff ack-barrier
                    // window, where the new coordinator's first round can
                    // overtake the old round's install): answering now would
                    // report a delta against a base the in-flight install is
                    // about to replace. Defer until that install lands.
                    self.deferred
                        .push_back((from, Message::DeltaRequest { sync, obj }));
                    return;
                }
                let delta = self.engine.peek(obj.as_str()) - meta.base;
                // Freeze: no local commit may move the counter between this
                // reply and the round's install.
                self.frozen.insert(obj.clone(), sync);
                self.freeze_started.insert(obj.clone(), self.timer.start());
                out.push((from, Message::DeltaReply { sync, obj, delta }));
            }
            Message::DeltaReply { sync, obj, delta } => {
                let complete = match self.active.get_mut(&obj) {
                    Some(round) if round.sync == sync => {
                        round.deltas.insert(from, delta);
                        round.deltas.len() == round.participants.len()
                    }
                    _ => false, // stale reply from a superseded round
                };
                if complete {
                    self.finish_collect(&obj, out);
                }
            }
            Message::Install { sync, meta, apply } => {
                let obj = meta.obj.clone();
                if apply {
                    self.engine
                        .write_logged(obj.as_str(), meta.base)
                        .expect("install runs between local transactions");
                    self.install_counter(meta);
                }
                self.frozen.remove(&obj);
                if let Some(sw) = self.freeze_started.remove(&obj) {
                    self.metrics
                        .observe(self.phase_ids.freeze, sw.elapsed_micros());
                }
                // Any completed round refreshes the treaty, so a pending
                // proactive request for this counter is no longer stale.
                self.proactive_inflight.remove(&obj);
                out.push((from, Message::InstallAck { sync, obj }));
                self.drain_deferred(out);
                self.pump(out);
            }
            Message::InstallAck { sync, obj } => {
                let complete = match self.active.get_mut(&obj) {
                    Some(round) if round.sync == sync => {
                        round.acks.insert(from);
                        round.acks.len() == round.install_to.len()
                    }
                    _ => false,
                };
                if complete {
                    self.complete_round(&obj, out);
                }
            }
            Message::SyncDone {
                req,
                refilled,
                solver_micros,
                folded: _,
            } => self.on_sync_done(req, refilled, solver_micros, out),
            Message::StateRequest => {
                let counters = self
                    .counters
                    .iter()
                    .map(|(obj, state)| CounterMeta {
                        obj: obj.clone(),
                        base: state.base,
                        lower_bound: state.lower_bound,
                        members: state.members.clone(),
                        allowances: state.allowances.clone(),
                    })
                    .collect();
                out.push((
                    from,
                    Message::StateReply {
                        counters,
                        roster: self.roster.clone(),
                    },
                ));
            }
            Message::StateReply { .. } => {
                // Only meaningful while recovering; ignore otherwise.
            }
            Message::JoinRequest {
                site,
                addr,
                expected_epoch,
            } => self.on_join_request(site as usize, &addr, expected_epoch, out),
            Message::JoinAck { .. } => {
                // Only meaningful while joining; a duplicate ack after the
                // join resolved is ignored.
            }
            Message::Leave { site } => self.on_leave(site as usize, out),
            Message::MembershipInstall { roster, addrs } => {
                self.record_addrs(&addrs);
                self.adopt_roster(roster);
                self.pump(out);
            }
            Message::RegisterProgram { bundle } => {
                let count = self.register_program(&bundle);
                out.push((from, Message::ProgramAck { count }));
                // Registration may establish the treaties a queued
                // transaction was implicitly waiting for.
                self.pump(out);
            }
            Message::ProgramSync { req, txn } => {
                debug_assert_eq!(
                    self.site, GENERAL_COORDINATOR,
                    "program sync routed to the wrong coordinator"
                );
                self.general_backlog.push_back(QueuedProgramSync {
                    origin: from,
                    req,
                    txn,
                });
                self.try_start_general_round(out);
            }
            Message::ProgramCollect { sync } => {
                // Freeze general execution: no local commit may move a
                // program object between this report and the install.
                self.general_frozen = true;
                let values = self.local_program_values();
                out.push((from, Message::ProgramDeltas { sync, values }));
            }
            Message::ProgramDeltas { sync, values } => {
                let complete = match &mut self.general_active {
                    Some(round) if round.sync == sync => {
                        round.values.insert(from, values);
                        round.values.len() == self.program_sites
                    }
                    _ => false, // stale reply from a superseded round
                };
                if complete {
                    self.finish_general_collect(out);
                }
            }
            Message::ProgramInstall {
                sync,
                txn,
                round,
                db,
            } => {
                self.apply_general_install(txn, round, &db);
                out.push((from, Message::ProgramInstallAck { sync }));
                self.pump(out);
            }
            Message::ProgramInstallAck { sync } => {
                let complete = match &mut self.general_active {
                    Some(round) if round.sync == sync => {
                        round.acks.insert(from);
                        round.acks.len() == self.program_sites - 1
                    }
                    _ => false,
                };
                if complete {
                    self.complete_general_round(out);
                }
            }
            Message::Seed { meta } => {
                // Cluster-wide registration over the wire (TCP backends,
                // where no coordinating thread reaches every engine): write
                // the initial value through the engine if the counter is
                // new, install the treaty, and always ack — a re-seed after
                // a client reconnect is idempotent.
                let obj = meta.obj.clone();
                if !self.counters.contains_key(&obj) {
                    self.engine
                        .write_logged(obj.as_str(), meta.base)
                        .expect("seed write runs between local transactions");
                    self.install_counter(meta);
                }
                out.push((from, Message::SeedAck { obj }));
                self.drain_deferred(out);
            }
            Message::Hello { .. }
            | Message::SeedAck { .. }
            | Message::ProgramAck { .. }
            | Message::PollRequest
            | Message::PollReply { .. }
            | Message::SyncAllRequest
            | Message::SyncAllReply { .. }
            | Message::StatsRequest
            | Message::StatsReply { .. }
            | Message::MetricsRequest
            | Message::MetricsReply { .. } => {
                // Connection-layer and client-side messages. The TCP node
                // loop answers these itself (poll and full-sync completion
                // span scheduling rounds, which a per-frame state machine
                // cannot observe); a worker that still receives one — a
                // misbehaving client on a permissive transport — ignores it.
            }
        }
    }

    // ------------------------------------------------------------------
    // Crash recovery (simulation backend)
    // ------------------------------------------------------------------

    /// Restarts the worker after a fail-stop crash: `engine` is the engine
    /// reopened from the site's WAL frame; all volatile protocol state
    /// (treaty metadata, freezes, coordination rounds) is discarded and
    /// refetched from `buddy` via `StateRequest`. The client attachment
    /// (queued operations, completed outcomes, the id allocators) survives —
    /// it models the clients and the persisted epoch counter, not site RAM.
    pub fn crash_restart(&mut self, engine: Arc<Engine>, buddy: usize, out: &mut Outbox) {
        assert_ne!(buddy, self.site, "a site cannot recover state from itself");
        self.engine = engine;
        self.counters.clear();
        self.frozen.clear();
        self.freeze_started.clear();
        self.active.clear();
        self.backlog.clear();
        self.deferred.clear();
        self.membership = None;
        self.membership_queue.clear();
        self.proactive_inflight.clear();
        self.demand.iter_mut().for_each(|d| *d = 0.0);
        // The roster and eviction set survive: they model the persisted
        // epoch state, and recovery adopts the buddy's (possibly newer)
        // roster from the `StateReply`.
        // The program registry models durable catalog state (sources would
        // live in the WAL-covered catalog of a real system), but its treaty
        // table is volatile: freeze general execution until the
        // post-recovery resynchronization reinstalls the authoritative
        // database and round counter.
        self.general_active = None;
        self.general_backlog.clear();
        if self.programs.is_some() {
            self.general_frozen = true;
        }
        self.recovering = true;
        out.push((buddy, Message::StateRequest));
    }

    fn finish_recovery(&mut self, counters: Vec<CounterMeta>, roster: Roster, out: &mut Outbox) {
        for meta in counters {
            self.install_counter(meta);
        }
        // Replay into the *current* epoch: membership may have moved while
        // this site was down, and the buddy's roster is at least as new as
        // the one that survived the crash.
        self.adopt_roster(roster);
        self.recovering = false;
        if self.programs.is_some() {
            // Fire-and-forget general resynchronization: the install that
            // answers it restores the treaty round counter and lifts the
            // restart freeze. Its `SyncDone` arrives with an unknown
            // request id and is ignored.
            let req = self.fresh_req();
            out.push((GENERAL_COORDINATOR, Message::ProgramSync { req, txn: None }));
        }
        let backlog: Vec<(usize, Message)> = self.recovery_backlog.drain(..).collect();
        for (from, msg) in backlog {
            self.handle(from, msg, out);
        }
        self.pump(out);
    }

    // ------------------------------------------------------------------
    // Client queue pump (head-of-line, submission order)
    // ------------------------------------------------------------------

    fn pump(&mut self, out: &mut Outbox) {
        if self.recovering {
            return;
        }
        // Operations are popped (not clone-peeked) and pushed back only on
        // a stall, so the common path moves each op exactly once.
        while self.waiting.is_none() {
            let Some(op) = self.queue.pop_front() else {
                break;
            };
            match op {
                SiteOp::Order {
                    obj,
                    amount,
                    refill_to,
                } => {
                    if amount < 0 || !self.counter_member(&obj) {
                        // Wire-originated batches are untrusted (any TCP
                        // client can submit one): an order on an unknown
                        // counter, with a negative amount, or at a site that
                        // is not a member of the counter (a retired site
                        // holds metadata purely for routing) completes as an
                        // uncommitted no-op — at the head of the line, so
                        // outcome order is preserved — instead of tearing
                        // the site down.
                        self.completed.push(OpOutcome::default());
                        continue;
                    }
                    if self.frozen.contains_key(&obj) {
                        // Stalled until the in-flight round installs.
                        self.queue.push_front(SiteOp::Order {
                            obj,
                            amount,
                            refill_to,
                        });
                        break;
                    }
                    if !self.try_local_order(&obj, amount) {
                        // Treaty violation: hand the operation to the
                        // counter's coordinator for a serialized round.
                        let req = self.fresh_req();
                        self.waiting = Some(req);
                        out.push((
                            self.coordinator(&obj),
                            Message::SyncRequest {
                                origin: self.site as u64,
                                req,
                                obj,
                                kind: SyncKind::Order { amount, refill_to },
                            },
                        ));
                        break;
                    }
                    self.maybe_proactive(obj, out);
                }
                SiteOp::Increment { obj, amount } => {
                    if !self.counter_member(&obj) {
                        // Untrusted wire input, as for orders above: an
                        // increment at a non-member would silently leak out
                        // of every future fold.
                        self.completed.push(OpOutcome::default());
                        continue;
                    }
                    if self.frozen.contains_key(&obj) {
                        self.queue.push_front(SiteOp::Increment { obj, amount });
                        break;
                    }
                    let outcome = match self.engine_rmw(&obj, |v| v + amount.abs()) {
                        Ok(()) => {
                            self.stats.local_commits += 1;
                            OpOutcome::local_commit()
                        }
                        Err(EngineError::WouldBlock { .. }) => OpOutcome::default(),
                        Err(e) => panic!("counter read failed: {e}"),
                    };
                    self.completed.push(outcome);
                }
                SiteOp::ForceSync { obj } => {
                    if self.frozen.contains_key(&obj) {
                        self.queue.push_front(SiteOp::ForceSync { obj });
                        break;
                    }
                    if !self.counters.contains_key(&obj) {
                        // Mirror `ReplicatedRuntime::force_sync` on an
                        // unregistered counter: a degenerate negotiation.
                        self.stats.negotiations += 1;
                        self.stats.synchronizations += 1;
                        self.completed.push(OpOutcome::synchronized(false, 0));
                        continue;
                    }
                    let req = self.fresh_req();
                    self.waiting = Some(req);
                    out.push((
                        self.coordinator(&obj),
                        Message::SyncRequest {
                            origin: self.site as u64,
                            req,
                            obj,
                            kind: SyncKind::Pin,
                        },
                    ));
                    break;
                }
                SiteOp::Transaction { index } => {
                    if self.general_frozen {
                        // Stalled until the in-flight general round installs.
                        self.queue.push_front(SiteOp::Transaction { index });
                        break;
                    }
                    if !self.run_general_transaction(index, out) {
                        break; // treaty violation routed to the coordinator
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // General transactions (the full L++ pipeline)
    // ------------------------------------------------------------------

    /// Executes one registered general transaction at the head of the line.
    /// Within its local treaty the transaction commits against this site's
    /// engine with no messages (Section 3.2's disconnected execution); a
    /// treaty violation undoes the writes and hands the transaction to the
    /// [`GENERAL_COORDINATOR`] for a freeze → fold → re-run → renegotiate
    /// round. Returns `false` when the operation is now waiting on that
    /// round (the pump must stop), `true` when it completed.
    fn run_general_transaction(&mut self, index: usize, out: &mut Outbox) -> bool {
        let Some(programs) = &self.programs else {
            // No program registered: typed rejection, never a panic — wire
            // batches are untrusted.
            self.completed.push(OpOutcome::unsupported());
            return true;
        };
        match programs.home_site(index) {
            Some(home) if home == self.site => {}
            _ => {
                // Out-of-range index, or a confused client submitted the
                // transaction to a site that does not hold its write set
                // (Assumption 3.1 makes that an unroutable operation).
                self.completed.push(OpOutcome::unsupported());
                return true;
            }
        }
        let txn = programs.transactions()[index].clone();
        // Pre-images of the may-write set, for the violation rollback.
        let pre: Vec<(ObjId, i64)> = txn
            .write_set()
            .iter()
            .map(|obj| (obj.clone(), self.engine.peek(obj.as_str())))
            .collect();
        let result = match run_on_engine(&self.engine, &txn, &[]) {
            Ok(result) => result,
            Err(_) => {
                self.completed.push(OpOutcome::unsupported());
                return true;
            }
        };
        if !result.committed {
            // Aborted by local concurrency control: an uncommitted no-op.
            self.completed.push(OpOutcome::default());
            return true;
        }
        let view = Database::from_pairs(self.engine.snapshot());
        let programs = self.programs.as_ref().expect("registered above");
        if programs.local_holds(self.site, &view) {
            self.stats.local_commits += 1;
            self.completed.push(OpOutcome::local_commit());
            return true;
        }
        // Treaty violation: undo the offending writes (the re-run after the
        // fold is the committed execution) and wait for the round.
        for (obj, value) in pre {
            self.engine.poke(obj.as_str(), value);
        }
        let req = self.fresh_req();
        self.waiting = Some(req);
        out.push((
            GENERAL_COORDINATOR,
            Message::ProgramSync {
                req,
                txn: Some(index as u64),
            },
        ));
        false
    }

    /// The authoritative values of the program objects located at this site
    /// (this site's contribution to a general fold).
    fn local_program_values(&self) -> Vec<(ObjId, i64)> {
        let Some(programs) = &self.programs else {
            return Vec::new();
        };
        programs
            .loc()
            .objects_at(self.site)
            .into_iter()
            .map(|obj| {
                let value = self.engine.peek(obj.as_str());
                (obj, value)
            })
            .collect()
    }

    /// Starts the next queued general round, if none is active.
    fn try_start_general_round(&mut self, out: &mut Outbox) {
        while self.general_active.is_none() {
            let Some(request) = self.general_backlog.pop_front() else {
                return;
            };
            if self.programs.is_none() {
                // Nothing registered (a resync racing a restart): answer
                // with a degenerate completion so the origin never hangs.
                let done = Message::SyncDone {
                    req: request.req,
                    refilled: false,
                    solver_micros: 0,
                    folded: false,
                };
                if request.origin == self.site {
                    self.on_sync_done(request.req, false, 0, out);
                } else {
                    out.push((request.origin, done));
                }
                continue;
            }
            let sync = self.next_sync * self.sites as u64 + self.site as u64;
            self.next_sync += 1;
            self.general_frozen = true;
            let mut values = BTreeMap::new();
            values.insert(self.site, self.local_program_values());
            self.general_active = Some(GeneralRound {
                sync,
                origin: request.origin,
                req: request.req,
                txn: request.txn,
                values,
                acks: BTreeSet::new(),
                solver_micros: 0,
                started: self.timer.start(),
            });
            // General rounds span the registration-era universe, not the
            // roster: program homes never move, and registration-era members
            // keep answering program frames even after retiring.
            if self.program_sites == 1 {
                self.finish_general_collect(out);
                return;
            }
            for peer in 0..self.program_sites {
                if peer != self.site {
                    out.push((peer, Message::ProgramCollect { sync }));
                }
            }
            return;
        }
    }

    /// Every site's values are in: fold the authoritative program database,
    /// broadcast the install, and apply it locally.
    fn finish_general_collect(&mut self, out: &mut Outbox) {
        let (sync, txn, db) = {
            let round = self.general_active.as_ref().expect("round active");
            // Each site contributes exactly the objects located at it, so
            // the fold is a disjoint union; sort for a canonical wire form.
            let mut db: Vec<(ObjId, i64)> = round
                .values
                .values()
                .flat_map(|values| values.iter().cloned())
                .collect();
            db.sort();
            (round.sync, round.txn, db)
        };
        let pre_round = self
            .programs
            .as_ref()
            .expect("general round requires programs")
            .round();
        for peer in 0..self.program_sites {
            if peer != self.site {
                out.push((
                    peer,
                    Message::ProgramInstall {
                        sync,
                        txn,
                        round: pre_round,
                        db: db.clone(),
                    },
                ));
            }
        }
        let solver_micros = self.apply_general_install(txn, pre_round, &db);
        let round = self.general_active.as_mut().expect("round active");
        round.solver_micros = solver_micros;
        if self.program_sites == 1 {
            self.complete_general_round(out);
        } else {
            self.pump(out);
        }
    }

    /// Installs the folded program database, deterministically re-runs the
    /// violating transaction (every site reaches the same state), resets
    /// the lockstep round counter, and renegotiates treaties from the
    /// installed post-state — the shared [`ProgramSet::negotiate`] path, so
    /// all sites (and the serial oracle) derive byte-identical treaties.
    /// Returns the solver time in microseconds.
    fn apply_general_install(&mut self, txn: Option<u64>, round: u64, db: &[(ObjId, i64)]) -> u64 {
        for (obj, value) in db {
            self.engine
                .write_logged(obj.as_str(), *value)
                .expect("install runs between local transactions");
        }
        let mut global = Database::from_pairs(db.iter().cloned());
        let Some(programs) = &mut self.programs else {
            self.general_frozen = false;
            return 0;
        };
        if let Some(index) = txn {
            if let Some(t) = programs.transactions().get(index as usize).cloned() {
                if let Ok(result) = run_on_engine(&self.engine, &t, &[]) {
                    if result.committed {
                        for (obj, value) in &result.writes {
                            global.set(obj.clone(), *value);
                        }
                    }
                }
            }
        }
        programs.set_round(round);
        let solver_micros = programs.negotiate(&global, self.timer);
        self.stats.negotiations += 1;
        self.stats.solver_micros_total += solver_micros;
        self.general_frozen = false;
        solver_micros
    }

    /// All install acks are in: report to the origin and start the next
    /// queued general round.
    fn complete_general_round(&mut self, out: &mut Outbox) {
        let round = self.general_active.take().expect("round active");
        self.stats.synchronizations += 1;
        self.metrics
            .observe(self.phase_ids.round(false), round.started.elapsed_micros());
        if round.origin == self.site {
            self.on_sync_done(round.req, false, round.solver_micros, out);
        } else {
            out.push((
                round.origin,
                Message::SyncDone {
                    req: round.req,
                    refilled: false,
                    solver_micros: round.solver_micros,
                    folded: true,
                },
            ));
        }
        self.try_start_general_round(out);
    }

    /// True when this site is a member of the counter (knows the treaty
    /// *and* appears in its member list).
    fn counter_member(&self, obj: &ObjId) -> bool {
        self.counters
            .get(obj)
            .is_some_and(|meta| meta.members.binary_search(&self.site).is_ok())
    }

    /// Attempts the within-treaty fast path of an order. Returns `false` on
    /// a treaty violation (nothing committed); pushes the outcome and
    /// returns `true` otherwise.
    fn try_local_order(&mut self, obj: &ObjId, amount: i64) -> bool {
        assert!(amount >= 0);
        let meta = self
            .counters
            .get(obj)
            .unwrap_or_else(|| panic!("counter `{obj}` not registered"));
        let allowance = meta
            .allowance_of(self.site)
            .expect("pump admits orders from members only");
        let floor = meta.base + allowance;
        let engine = &*self.engine;
        let mut txn = engine.begin();
        let value = match engine.read(&txn, obj.as_str()) {
            Ok(v) => v,
            Err(EngineError::WouldBlock { .. }) => {
                engine.abort(&mut txn).ok();
                self.completed.push(OpOutcome::default());
                return true;
            }
            Err(e) => panic!("counter read failed: {e}"),
        };
        let new_value = value - amount;
        if new_value >= floor {
            engine
                .write(&txn, obj.as_str(), new_value)
                .and_then(|()| engine.commit(&mut txn))
                .expect("writer already holds the lock");
            self.stats.local_commits += 1;
            self.completed.push(OpOutcome::local_commit());
            return true;
        }
        engine.abort(&mut txn).expect("abort of active transaction");
        false
    }

    /// Fires a fire-and-forget proactive round when the demand-adaptive
    /// control loop is on and this site's remaining headroom has dropped to
    /// the margin. The round folds and renegotiates exactly like a pin, but
    /// no client operation waits on it: its `SyncDone` arrives with an
    /// unknown request id and is ignored.
    fn maybe_proactive(&mut self, obj: ObjId, out: &mut Outbox) {
        let Some(adaptive) = self.tuning.adaptive else {
            return;
        };
        if self.frozen.contains_key(&obj) || self.proactive_inflight.contains(&obj) {
            return;
        }
        let meta = self.counters.get(&obj).expect("counter registered");
        let Some(own) = meta.allowance_of(self.site) else {
            return; // not a member: nothing to run ahead of
        };
        let allowance = -own;
        if allowance <= 0 {
            return;
        }
        let remaining = self.engine.peek(obj.as_str()) - (meta.base + own);
        if remaining as f64 > adaptive.margin * allowance as f64 {
            return;
        }
        self.proactive_inflight.insert(obj.clone());
        let req = self.fresh_req();
        out.push((
            self.coordinator(&obj),
            Message::SyncRequest {
                origin: self.site as u64,
                req,
                obj,
                kind: SyncKind::Proactive,
            },
        ));
    }

    /// Rebuilds the adaptive hints from the consumption EWMA: site weights
    /// become normalized demand shares, floored at a tiny positive value so
    /// the sampling model never writes a site off entirely.
    fn refresh_adaptive_hints(&mut self) {
        self.adaptive_hints.expected_amount = self.hints.expected_amount;
        let total: f64 = self.demand.iter().sum();
        if total <= 0.0 {
            return;
        }
        for (weight, demand) in self
            .adaptive_hints
            .site_weights
            .iter_mut()
            .zip(&self.demand)
        {
            *weight = (demand / total).max(1e-6);
        }
    }

    fn engine_rmw(&self, obj: &ObjId, f: impl FnOnce(i64) -> i64) -> Result<(), EngineError> {
        let engine = &*self.engine;
        let mut txn = engine.begin();
        match engine.read(&txn, obj.as_str()) {
            Ok(value) => engine
                .write(&txn, obj.as_str(), f(value))
                .and_then(|()| engine.commit(&mut txn)),
            Err(e) => {
                engine.abort(&mut txn).ok();
                Err(e)
            }
        }
    }

    fn on_sync_done(&mut self, req: u64, refilled: bool, solver_micros: u64, out: &mut Outbox) {
        if self.waiting == Some(req) {
            self.waiting = None;
            self.completed
                .push(OpOutcome::synchronized(refilled, solver_micros));
            self.pump(out);
            return;
        }
        if let Some(change) = &mut self.membership {
            if change.pending.remove(&req) {
                if change.pending.is_empty() {
                    self.finish_membership(out);
                }
                return;
            }
        }
        if let Some(fs) = &mut self.full_sync {
            if fs.pending.remove(&req) {
                fs.solver_micros += solver_micros;
                fs.complete = fs.pending.is_empty();
            }
        }
    }

    // ------------------------------------------------------------------
    // Coordinator duties
    // ------------------------------------------------------------------

    fn on_sync_request(
        &mut self,
        origin: usize,
        req: u64,
        obj: ObjId,
        kind: SyncKind,
        out: &mut Outbox,
    ) {
        let coordinator = self.coordinator(&obj);
        if coordinator != self.site {
            // Routed with a stale member list (a handoff moved the shard
            // while the request was in flight): forward. The frame carries
            // its origin, so the eventual `SyncDone` still reaches the
            // requester. Forwarding chains terminate because every hop's
            // metadata converges to the handoff's install.
            out.push((
                coordinator,
                Message::SyncRequest {
                    origin: origin as u64,
                    req,
                    obj,
                    kind,
                },
            ));
            return;
        }
        if !self.counters.contains_key(&obj) {
            // This site is the roster-fallback coordinator for a counter it
            // has not installed yet (a joiner mid-handoff): defer until the
            // install lands.
            self.deferred.push_back((
                origin,
                Message::SyncRequest {
                    origin: origin as u64,
                    req,
                    obj,
                    kind,
                },
            ));
            return;
        }
        self.backlog
            .entry(obj.clone())
            .or_default()
            .push_back(QueuedRequest { origin, req, kind });
        self.try_start_round(obj, out);
    }

    fn try_start_round(&mut self, obj: ObjId, out: &mut Outbox) {
        if self.active.contains_key(&obj) {
            return; // the ack barrier: one round per counter at a time
        }
        let Some(request) = self.backlog.get_mut(&obj).and_then(|q| q.pop_front()) else {
            return;
        };
        let meta = self
            .counters
            .get(&obj)
            .unwrap_or_else(|| panic!("sync requested for unknown counter `{obj}`"));
        // The fold spans the counter's members as of round start; a handoff
        // completing this round may hand the *next* round a different set.
        let participants = meta.members.clone();
        let sync = self.next_sync * self.sites as u64 + self.site as u64;
        self.next_sync += 1;
        let own_delta = self.engine.peek(obj.as_str()) - meta.base;
        self.frozen.insert(obj.clone(), sync);
        let mut deltas = BTreeMap::new();
        deltas.insert(self.site, own_delta);
        let peers: Vec<usize> = participants
            .iter()
            .copied()
            .filter(|peer| *peer != self.site)
            .collect();
        self.active.insert(
            obj.clone(),
            ActiveRound {
                sync,
                origin: request.origin,
                req: request.req,
                kind: request.kind,
                participants,
                install_to: Vec::new(),
                deltas,
                acks: BTreeSet::new(),
                outcome: None,
                started: self.timer.start(),
                install_started: None,
            },
        );
        if peers.is_empty() {
            self.finish_collect(&obj, out);
            return;
        }
        for peer in peers {
            out.push((
                peer,
                Message::DeltaRequest {
                    sync,
                    obj: obj.clone(),
                },
            ));
        }
    }

    /// All deltas are in: execute the request on the folded value,
    /// renegotiate, install locally and broadcast the install.
    fn finish_collect(&mut self, obj: &ObjId, out: &mut Outbox) {
        let (collect_micros, proactive) = {
            let round = self.active.get(obj).expect("round active");
            (
                round.started.elapsed_micros(),
                matches!(round.kind, SyncKind::Proactive),
            )
        };
        self.metrics
            .observe(self.phase_ids.collect(proactive), collect_micros);
        if let Some(adaptive) = self.tuning.adaptive {
            // Fold the round's observed consumption (decrements only) into
            // the per-site demand EWMA before negotiating, so the new split
            // tracks where the workload actually is. The EWMA covers the
            // founding sites; late joiners are split uniformly (below).
            let round = self.active.get(obj).expect("round active");
            let consumed: Vec<(usize, f64)> = round
                .participants
                .iter()
                .map(|site| {
                    (
                        *site,
                        round.deltas.get(site).map_or(0.0, |d| (-*d).max(0) as f64),
                    )
                })
                .collect();
            for (site, consumed) in consumed {
                if let Some(demand) = self.demand.get_mut(site) {
                    *demand =
                        (1.0 - adaptive.round_alpha) * *demand + adaptive.round_alpha * consumed;
                }
            }
            self.refresh_adaptive_hints();
        }
        let round = self.active.get(obj).expect("round active");
        let meta = self.counters.get(obj).expect("counter known");
        let logical = meta.base + round.deltas.values().sum::<i64>();
        let (new_base, refilled, renegotiate) = match &round.kind {
            SyncKind::Order { amount, refill_to } => {
                if logical - amount >= meta.lower_bound {
                    (logical - amount, false, true)
                } else if let Some(refill) = refill_to {
                    (*refill, true, true)
                } else {
                    // No refill semantics: the decrement applies on the
                    // consistent state as a fully synchronized operation.
                    (logical - amount, false, true)
                }
            }
            // A proactive round is a pin fired ahead of the violation: fold
            // the deltas and renegotiate on the drifted demand.
            SyncKind::Pin | SyncKind::Proactive => (logical, false, true),
            // A fold of an already-synchronized counter (every delta zero)
            // releases the freezes without touching any state. The check is
            // per-site, not on the sum: mixed increments and decrements can
            // cancel to a zero sum while the replicas still disagree, and a
            // fold must leave them converged.
            SyncKind::Fold => (
                logical,
                false,
                round.deltas.values().any(|delta| *delta != 0),
            ),
            // A handoff re-splits over the new member set even when every
            // delta is zero — the allowance vector must change shape.
            SyncKind::Handoff { .. } => (logical, false, true),
        };
        let folded = match &round.kind {
            SyncKind::Handoff { .. } => round.deltas.values().any(|delta| *delta != 0),
            _ => renegotiate,
        };
        let new_members = match &round.kind {
            SyncKind::Handoff { members } => members.clone(),
            _ => meta.members.clone(),
        };
        let (allowances, solver_micros) = if renegotiate {
            self.stats.negotiations += 1;
            if proactive {
                self.stats.proactive_negotiations += 1;
            }
            let previous = self.tuning.warm_start.then_some(meta.allowances.as_slice());
            // The workload hints are indexed by founding site; they apply
            // verbatim while the member set is still `0..sites`. Any other
            // member set (after a join or leave) is split uniformly — the
            // adaptive EWMA re-skews it within a few rounds.
            let k = new_members.len();
            let dense = k == self.sites && new_members.last() == Some(&(self.sites - 1));
            let uniform;
            let hints = if dense {
                if self.tuning.adaptive.is_some() {
                    &self.adaptive_hints
                } else {
                    &self.hints
                }
            } else {
                let mut h = WorkloadHints::uniform(k);
                h.expected_amount = self.hints.expected_amount;
                uniform = h;
                &uniform
            };
            negotiate_allowances_cached(
                self.mode,
                hints,
                k,
                new_base,
                meta.lower_bound,
                self.timer,
                &mut self.cache,
                previous,
            )
        } else {
            (meta.allowances.clone(), 0)
        };
        self.stats.solver_micros_total += solver_micros;
        if renegotiate {
            self.metrics
                .observe(self.phase_ids.solve(proactive), solver_micros);
        }
        self.proactive_inflight.remove(obj);
        let install_meta = CounterMeta {
            obj: obj.clone(),
            base: new_base,
            lower_bound: meta.lower_bound,
            members: new_members.clone(),
            allowances,
        };
        if renegotiate {
            self.engine
                .write_logged(obj.as_str(), new_base)
                .expect("install runs between local transactions");
            self.install_counter(install_meta.clone());
        }
        self.frozen.remove(obj);
        let install_started = self.timer.start();
        // Install targets: the participants for an ordinary round; for a
        // handoff, the union of old and new members — departing sites learn
        // they are out, arriving sites receive the treaty.
        let round = self.active.get_mut(obj).expect("round active");
        let mut targets: BTreeSet<usize> = round.participants.iter().copied().collect();
        if matches!(round.kind, SyncKind::Handoff { .. }) {
            targets.extend(new_members.iter().copied());
        }
        targets.remove(&self.site);
        round.install_to = targets.into_iter().collect();
        round.outcome = Some((refilled, solver_micros, folded));
        round.install_started = Some(install_started);
        let sync = round.sync;
        let install_to = round.install_to.clone();
        if install_to.is_empty() {
            self.complete_round(obj, out);
        } else {
            for peer in install_to {
                out.push((
                    peer,
                    Message::Install {
                        sync,
                        meta: install_meta.clone(),
                        apply: renegotiate,
                    },
                ));
            }
            // Unfreezing may unblock this site's own client queue.
            self.pump(out);
        }
    }

    fn complete_round(&mut self, obj: &ObjId, out: &mut Outbox) {
        let round = self.active.remove(obj).expect("round active");
        let (refilled, solver_micros, folded) =
            round.outcome.expect("round completed its install phase");
        let proactive = matches!(round.kind, SyncKind::Proactive);
        if let Some(sw) = &round.install_started {
            self.metrics
                .observe(self.phase_ids.install(proactive), sw.elapsed_micros());
        }
        self.metrics.observe(
            self.phase_ids.round(proactive),
            round.started.elapsed_micros(),
        );
        if folded {
            self.stats.synchronizations += 1;
        }
        if round.origin == self.site {
            self.on_sync_done(round.req, refilled, solver_micros, out);
        } else {
            out.push((
                round.origin,
                Message::SyncDone {
                    req: round.req,
                    refilled,
                    solver_micros,
                    folded,
                },
            ));
        }
        let coordinator = self.coordinator(obj);
        if coordinator == self.site {
            self.try_start_round(obj.clone(), out);
        } else if let Some(queue) = self.backlog.remove(obj) {
            // The round that just completed was a handoff that moved this
            // shard away: forward the queued requests to the new
            // coordinator (each still carries its origin).
            for request in queue {
                out.push((
                    coordinator,
                    Message::SyncRequest {
                        origin: request.origin as u64,
                        req: request.req,
                        obj: obj.clone(),
                        kind: request.kind,
                    },
                ));
            }
        }
        self.drain_deferred(out);
    }

    // ------------------------------------------------------------------
    // Elastic membership (join / leave / handoff orchestration)
    // ------------------------------------------------------------------

    /// Sends the `JoinRequest` that asks `target` (any member; forwarded to
    /// the membership coordinator) to admit this site. Call once, on a
    /// worker built with [`SiteWorker::new_joining`]. `my_addr` is this
    /// site's dial address for the TCP backend (empty elsewhere);
    /// `expected_epoch` makes the join conditional on the cluster still
    /// being at that epoch.
    pub fn begin_join(
        &mut self,
        target: usize,
        my_addr: &str,
        expected_epoch: Option<u64>,
        out: &mut Outbox,
    ) {
        assert!(self.joining, "begin_join on a worker that is not joining");
        self.record_addr(self.site, my_addr);
        out.push((
            target,
            Message::JoinRequest {
                site: self.site as u64,
                addr: my_addr.to_string(),
                expected_epoch,
            },
        ));
    }

    fn finish_join(
        &mut self,
        ok: bool,
        roster: Roster,
        addrs: &[String],
        program: Option<(ProgramBundle, u64)>,
        out: &mut Outbox,
    ) {
        self.joining = false;
        self.record_addrs(addrs);
        if ok {
            self.adopt_roster(roster);
            if let Some((bundle, program_sites)) = program {
                // Pin the program home mapping to the registration-era
                // universe so this site derives the identical mapping.
                self.register_program_at(&bundle, program_sites as usize);
                if self.site < self.program_sites {
                    // A recycled registration-era id: resynchronize so the
                    // treaty round counter catches up before serving.
                    self.general_frozen = true;
                    let req = self.fresh_req();
                    out.push((GENERAL_COORDINATOR, Message::ProgramSync { req, txn: None }));
                } else {
                    // A genuinely new site is a bystander to general rounds
                    // (never polled, never a home): keep it unfrozen.
                    self.general_frozen = false;
                }
            }
        }
        // On refusal the site simply stays a cluster of one. Either way,
        // replay everything that arrived while the join was pending —
        // including the handoff installs that make this site a member of
        // its counter shards.
        let backlog: Vec<(usize, Message)> = self.recovery_backlog.drain(..).collect();
        for (from, msg) in backlog {
            self.handle(from, msg, out);
        }
        self.pump(out);
    }

    fn on_join_request(
        &mut self,
        site: usize,
        addr: &str,
        expected_epoch: Option<u64>,
        out: &mut Outbox,
    ) {
        self.record_addr(site, addr);
        let leader = self.roster.leader();
        if leader != self.site {
            out.push((
                leader,
                Message::JoinRequest {
                    site: site as u64,
                    addr: addr.to_string(),
                    expected_epoch,
                },
            ));
            return;
        }
        if expected_epoch.is_some_and(|expected| expected != self.roster.epoch) {
            out.push((
                site,
                Message::JoinAck {
                    ok: false,
                    roster: self.roster.clone(),
                    addrs: self.peer_addrs.clone(),
                    program: None,
                },
            ));
            return;
        }
        if self.roster.contains(site) {
            // Already a member (a duplicate request, or a rejoin after a
            // missed install): idempotent ack with the current roster.
            self.evicted.remove(&site);
            out.push((
                site,
                Message::JoinAck {
                    ok: true,
                    roster: self.roster.clone(),
                    addrs: self.peer_addrs.clone(),
                    program: self.program_payload(),
                },
            ));
            return;
        }
        let in_flight = self
            .membership
            .as_ref()
            .is_some_and(|change| change.roster.contains(site));
        if in_flight || self.membership_queue.contains(&MembershipOp::Join { site }) {
            return; // this exact join is already being carried out
        }
        self.membership_queue.push_back(MembershipOp::Join { site });
        self.try_start_membership(out);
    }

    fn on_leave(&mut self, site: usize, out: &mut Outbox) {
        let leader = self.roster.leader();
        if leader != self.site {
            out.push((leader, Message::Leave { site: site as u64 }));
            return;
        }
        if !self.roster.contains(site) || self.roster.len() <= 1 {
            return; // not a member (idempotent), or the last member
        }
        if self.programs.is_some() && site < self.program_sites {
            // General-transaction homes are pinned to the registration-era
            // membership; a site that hosts them cannot retire while the
            // programs are registered. Refused by silently dropping — the
            // admin surface reads the roster to observe the outcome.
            return;
        }
        let in_flight = self
            .membership
            .as_ref()
            .is_some_and(|change| !change.roster.contains(site));
        if in_flight
            || self
                .membership_queue
                .contains(&MembershipOp::Leave { site })
        {
            return;
        }
        self.membership_queue
            .push_back(MembershipOp::Leave { site });
        self.try_start_membership(out);
    }

    /// Starts the next queued membership change, if none is in flight: ack
    /// the joiner first (so its worker leaves the joining state and can
    /// answer the handoff installs), then issue one handoff round per
    /// registered counter to that counter's *current* coordinator.
    fn try_start_membership(&mut self, out: &mut Outbox) {
        if self.membership.is_some() {
            return;
        }
        let Some(op) = self.membership_queue.pop_front() else {
            return;
        };
        let new_roster = match op {
            MembershipOp::Join { site } => self.roster.with_joined(site),
            MembershipOp::Leave { site } => self.roster.with_left(site),
        };
        let Some(new_roster) = new_roster else {
            // Raced into a no-op (already joined / already gone): next.
            self.try_start_membership(out);
            return;
        };
        if let MembershipOp::Join { site } = op {
            // Existing members must learn the joiner's dial address
            // *before* any handoff frame addresses it: a same-epoch
            // MembershipInstall is a pure address-book update (adopt_roster
            // ignores a non-newer roster), and per-pair FIFO delivers it
            // ahead of the handoff SyncRequest below.
            for member in self.roster.members.clone() {
                if member != self.site {
                    out.push((
                        member,
                        Message::MembershipInstall {
                            roster: self.roster.clone(),
                            addrs: self.peer_addrs.clone(),
                        },
                    ));
                }
            }
            out.push((
                site,
                Message::JoinAck {
                    ok: true,
                    roster: new_roster.clone(),
                    addrs: self.peer_addrs.clone(),
                    program: self.program_payload(),
                },
            ));
        }
        let objs: Vec<ObjId> = self.counters.keys().cloned().collect();
        let mut pending = BTreeSet::new();
        for obj in objs {
            let req = self.fresh_req();
            pending.insert(req);
            out.push((
                self.coordinator(&obj),
                Message::SyncRequest {
                    origin: self.site as u64,
                    req,
                    obj,
                    kind: SyncKind::Handoff {
                        members: new_roster.members.clone(),
                    },
                },
            ));
        }
        let done = pending.is_empty();
        self.membership = Some(MembershipChange {
            roster: new_roster,
            pending,
        });
        if done {
            self.finish_membership(out);
        }
    }

    /// Every handoff reported back: commit the change by broadcasting the
    /// epoch-bumped roster to the union of old and new members, adopt it
    /// locally, and start the next queued change.
    fn finish_membership(&mut self, out: &mut Outbox) {
        let change = self.membership.take().expect("membership change active");
        let targets: BTreeSet<usize> = self
            .roster
            .members
            .iter()
            .chain(change.roster.members.iter())
            .copied()
            .filter(|member| *member != self.site)
            .collect();
        for to in targets {
            out.push((
                to,
                Message::MembershipInstall {
                    roster: change.roster.clone(),
                    addrs: self.peer_addrs.clone(),
                },
            ));
        }
        self.adopt_roster(change.roster);
        self.try_start_membership(out);
    }

    /// Adopts a strictly newer roster: members that vanished between the
    /// two rosters are evicted, rejoined members are un-evicted. A roster
    /// that does not contain this site means the site itself retired — it
    /// keeps serving reads and routing, but commits nothing (see `pump`).
    fn adopt_roster(&mut self, roster: Roster) {
        if roster.epoch <= self.roster.epoch {
            return;
        }
        for member in &self.roster.members {
            if !roster.contains(*member) && *member != self.site {
                self.evicted.insert(*member);
            }
        }
        for member in &roster.members {
            self.evicted.remove(member);
        }
        self.roster = roster;
    }

    fn program_payload(&self) -> Option<(ProgramBundle, u64)> {
        self.program_bundle
            .as_ref()
            .map(|bundle| (bundle.clone(), self.program_sites as u64))
    }

    fn record_addr(&mut self, site: usize, addr: &str) {
        if addr.is_empty() {
            return;
        }
        if self.peer_addrs.len() <= site {
            self.peer_addrs.resize(site + 1, String::new());
        }
        self.peer_addrs[site] = addr.to_string();
    }

    fn record_addrs(&mut self, addrs: &[String]) {
        for (site, addr) in addrs.iter().enumerate() {
            self.record_addr(site, addr);
        }
    }

    /// Retries frames deferred for an unknown or foreign-frozen counter.
    /// Called after anything that installs counter state; a frame that is
    /// still blocked simply re-defers.
    fn drain_deferred(&mut self, out: &mut Outbox) {
        if self.deferred.is_empty() {
            return;
        }
        let items: Vec<(usize, Message)> = std::mem::take(&mut self.deferred).into();
        for (from, msg) in items {
            self.handle(from, msg, out);
        }
    }

    fn fresh_req(&mut self) -> u64 {
        let req = self.next_req * self.sites as u64 + self.site as u64;
        self.next_req += 1;
        req
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_protocol::{negotiate_allowances, OptimizerConfig};

    fn stock(i: usize) -> ObjId {
        ObjId::new(format!("stock[{i}]"))
    }

    fn mode() -> ReplicatedMode {
        ReplicatedMode::Homeostasis {
            optimizer: Some(OptimizerConfig {
                lookahead: 10,
                futures: 2,
                seed: 21,
            }),
        }
    }

    /// A tiny in-test router: delivers every outbox frame immediately,
    /// depth-first, until the cluster of workers is quiescent.
    fn route(workers: &mut [SiteWorker], mut out: Outbox, from: usize) {
        let mut wire: VecDeque<(usize, usize, Vec<u8>)> = out
            .drain(..)
            .map(|(to, msg)| (from, to, msg.encode()))
            .collect();
        while let Some((from, to, frame)) = wire.pop_front() {
            let msg = Message::decode(&frame).expect("well-formed frame");
            let mut next = Outbox::new();
            workers[to].handle(from, msg, &mut next);
            wire.extend(next.drain(..).map(|(dest, msg)| (to, dest, msg.encode())));
        }
    }

    fn cluster(sites: usize) -> Vec<SiteWorker> {
        let workers: Vec<SiteWorker> = (0..sites)
            .map(|site| {
                SiteWorker::new(
                    site,
                    sites,
                    mode(),
                    WorkloadHints::uniform(sites),
                    Timer::fixed_zero(),
                    Arc::new(Engine::new()),
                )
            })
            .collect();
        workers
    }

    fn register(workers: &mut [SiteWorker], obj: &ObjId, initial: i64, lower_bound: i64) {
        let sites = workers.len();
        let (allowances, _) = negotiate_allowances(
            mode(),
            &WorkloadHints::uniform(sites),
            sites,
            initial,
            lower_bound,
            Timer::fixed_zero(),
        );
        for worker in workers.iter_mut() {
            worker
                .engine()
                .write_logged(obj.as_str(), initial)
                .expect("population write");
            worker.install_counter(CounterMeta {
                obj: obj.clone(),
                base: initial,
                lower_bound,
                members: (0..sites).collect(),
                allowances: allowances.clone(),
            });
        }
    }

    fn submit(workers: &mut [SiteWorker], site: usize, op: SiteOp) {
        let mut out = Outbox::new();
        workers[site].submit(op, &mut out);
        route(workers, out, site);
    }

    #[test]
    fn local_orders_commit_without_messages() {
        let mut workers = cluster(2);
        register(&mut workers, &stock(0), 100, 1);
        let mut out = Outbox::new();
        workers[0].submit(
            SiteOp::Order {
                obj: stock(0),
                amount: 1,
                refill_to: Some(99),
            },
            &mut out,
        );
        assert!(out.is_empty(), "within-treaty order sent {out:?}");
        let outcomes = workers[0].take_completed();
        assert_eq!(outcomes, vec![OpOutcome::local_commit()]);
        assert_eq!(workers[0].engine().peek(stock(0).as_str()), 99);
    }

    #[test]
    fn treaty_violation_runs_a_full_round_and_matches_serial_semantics() {
        let mut workers = cluster(2);
        register(&mut workers, &stock(0), 4, 1);
        // Drain the headroom from site 0 until a violation synchronizes.
        let mut synced = 0;
        for _ in 0..12 {
            submit(
                &mut workers,
                0,
                SiteOp::Order {
                    obj: stock(0),
                    amount: 1,
                    refill_to: Some(9),
                },
            );
            let outcomes = workers[0].take_completed();
            assert_eq!(outcomes.len(), 1, "head-of-line op must complete");
            assert!(outcomes[0].committed);
            if outcomes[0].synchronized {
                synced += 1;
                assert_eq!(outcomes[0].comm_rounds, 2);
            }
        }
        assert!(synced > 0, "12 decrements over 3 headroom must synchronize");
        // Serial decrement-or-refill oracle over the same stream.
        let mut serial = 4i64;
        for _ in 0..12 {
            serial = if serial > 1 { serial - 1 } else { 9 };
        }
        let logical: i64 = {
            let base_site = 0;
            let _ = base_site;
            // logical = folded value: every site's engine value minus base,
            // but after the last op all workers agree or hold base+delta.
            let w0 = workers[0].engine().peek(stock(0).as_str());
            let w1 = workers[1].engine().peek(stock(0).as_str());
            let base = workers[0].counters[&stock(0)].base;
            base + (w0 - base) + (w1 - base)
        };
        assert_eq!(logical, serial);
    }

    #[test]
    fn increments_commit_locally_and_never_message() {
        let mut workers = cluster(3);
        let balance = ObjId::new("balance[0]");
        register(&mut workers, &balance, 0, -1_000_000);
        for i in 0..9 {
            let mut out = Outbox::new();
            workers[i % 3].submit(
                SiteOp::Increment {
                    obj: balance.clone(),
                    amount: 5,
                },
                &mut out,
            );
            assert!(out.is_empty());
        }
        let total: i64 = workers
            .iter()
            .map(|w| {
                let base = w.counters[&balance].base;
                w.engine().peek(balance.as_str()) - base
            })
            .sum();
        assert_eq!(total, 45);
    }

    #[test]
    fn force_sync_folds_deltas_on_every_site() {
        let mut workers = cluster(2);
        register(&mut workers, &stock(0), 10, 0);
        submit(
            &mut workers,
            0,
            SiteOp::Order {
                obj: stock(0),
                amount: 1,
                refill_to: None,
            },
        );
        submit(&mut workers, 1, SiteOp::ForceSync { obj: stock(0) });
        let outcomes = workers[1].take_completed();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].synchronized);
        // After the pin-round both engines hold the folded value.
        assert_eq!(workers[0].engine().peek(stock(0).as_str()), 9);
        assert_eq!(workers[1].engine().peek(stock(0).as_str()), 9);
        assert_eq!(workers[0].counters[&stock(0)].base, 9);
        assert_eq!(workers[1].counters[&stock(0)].base, 9);
    }

    #[test]
    fn full_sync_reports_once_all_counters_fold() {
        let mut workers = cluster(2);
        register(&mut workers, &stock(0), 50, 1);
        register(&mut workers, &stock(1), 50, 1);
        submit(
            &mut workers,
            0,
            SiteOp::Order {
                obj: stock(0),
                amount: 3,
                refill_to: Some(49),
            },
        );
        let mut out = Outbox::new();
        workers[1].begin_full_sync(&mut out);
        assert!(workers[1].take_full_sync_result().is_none());
        route(&mut workers, out, 1);
        assert!(workers[1].take_full_sync_result().is_some());
        // stock[0] folded everywhere; stock[1] (no deltas) untouched.
        assert_eq!(workers[1].engine().peek(stock(0).as_str()), 47);
        assert_eq!(workers[0].counters[&stock(0)].base, 47);
        assert_eq!(workers[0].counters[&stock(1)].base, 50);
    }

    #[test]
    fn frozen_counters_stall_the_client_queue_until_install() {
        let mut workers = cluster(2);
        register(&mut workers, &stock(0), 100, 1);
        // Freeze stock[0] at site 1 by hand (as an in-flight round would).
        let mut out = Outbox::new();
        let coordinator = workers[1].coordinator(&stock(0));
        workers[1].handle(
            coordinator,
            Message::DeltaRequest {
                sync: 0,
                obj: stock(0),
            },
            &mut out,
        );
        out.clear();
        workers[1].submit(
            SiteOp::Order {
                obj: stock(0),
                amount: 1,
                refill_to: Some(99),
            },
            &mut out,
        );
        assert!(
            workers[1].take_completed().is_empty(),
            "frozen op must stall"
        );
        assert!(!workers[1].idle());
        // The install releases the freeze and the op completes.
        let meta = CounterMeta {
            obj: stock(0),
            base: 100,
            lower_bound: 1,
            members: vec![0, 1],
            allowances: workers[1].counters[&stock(0)].allowances.clone(),
        };
        workers[1].handle(
            coordinator,
            Message::Install {
                sync: 0,
                meta,
                apply: true,
            },
            &mut out,
        );
        let outcomes = workers[1].take_completed();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].committed);
        assert!(workers[1].idle());
    }

    #[test]
    fn concurrent_violations_on_one_counter_serialize_through_the_backlog() {
        let mut workers = cluster(3);
        register(&mut workers, &stock(0), 3, 1);
        // Exhaust every site's allowance so all three violate at once.
        let mut outs: Vec<Outbox> = Vec::new();
        for worker in workers.iter_mut() {
            let mut out = Outbox::new();
            worker.submit(
                SiteOp::Order {
                    obj: stock(0),
                    amount: 2,
                    refill_to: Some(10),
                },
                &mut out,
            );
            outs.push(out);
        }
        for (site, out) in outs.into_iter().enumerate() {
            route(&mut workers, out, site);
        }
        // All three ops complete, and the final state follows the serial
        // decrement-or-refill semantics of some serialization.
        let mut committed = 0;
        for worker in workers.iter_mut() {
            for outcome in worker.take_completed() {
                assert!(outcome.committed);
                committed += 1;
            }
        }
        assert_eq!(committed, 3);
        let serial = {
            // 3 → refill-to-10? No: 3-2=1 ≥ lower_bound 1, then 1-2 < 1 →
            // refill 10, then 10-2=8 (all three serializations agree).
            8
        };
        let base = workers[0].counters[&stock(0)].base;
        let logical: i64 = base
            + workers
                .iter()
                .map(|w| w.engine().peek(stock(0).as_str()) - base)
                .sum::<i64>();
        assert_eq!(logical, serial);
        for worker in &workers {
            assert!(worker.quiescent_coordinator());
        }
    }

    #[test]
    fn crash_restart_recovers_engine_from_wal_and_meta_from_a_peer() {
        let mut workers = cluster(2);
        register(&mut workers, &stock(0), 100, 1);
        for _ in 0..5 {
            submit(
                &mut workers,
                1,
                SiteOp::Order {
                    obj: stock(0),
                    amount: 1,
                    refill_to: Some(99),
                },
            );
        }
        let frame = workers[1].engine().wal_frame();
        let reopened = Engine::reopen_from_frame(&frame).expect("intact frame");
        assert_eq!(reopened.peek(stock(0).as_str()), 95, "WAL replays orders");
        let mut out = Outbox::new();
        workers[1].crash_restart(Arc::new(reopened), 0, &mut out);
        assert!(!workers[1].knows_counter(&stock(0)));
        // Frames arriving mid-recovery are deferred, not lost.
        workers[1].handle(
            0,
            Message::DeltaRequest {
                sync: 0,
                obj: stock(0),
            },
            &mut out,
        );
        route(&mut workers, out, 1);
        assert!(workers[1].knows_counter(&stock(0)));
        assert_eq!(workers[1].counters[&stock(0)].base, 100);
        // The deferred delta request was answered after recovery with the
        // WAL-recovered delta.
        assert_eq!(workers[1].frozen.get(&stock(0)), Some(&0));
    }

    #[test]
    fn a_join_hands_off_counters_and_commits_the_roster() {
        let mut workers = cluster(2);
        register(&mut workers, &stock(0), 90, 0);
        // Consume headroom at site 1 so the handoff folds a real delta.
        submit(
            &mut workers,
            1,
            SiteOp::Order {
                obj: stock(0),
                amount: 5,
                refill_to: None,
            },
        );
        workers.push(SiteWorker::new_joining(
            2,
            mode(),
            1,
            Timer::fixed_zero(),
            Arc::new(Engine::new()),
        ));
        assert!(workers[2].joining());
        let mut out = Outbox::new();
        workers[2].begin_join(0, "", None, &mut out);
        route(&mut workers, out, 2);
        for worker in &workers {
            assert_eq!(worker.roster().epoch, 1, "site {}", worker.site());
            assert_eq!(worker.roster().members, vec![0, 1, 2]);
            assert!(worker.membership_idle());
        }
        assert!(!workers[2].joining());
        // The joiner received the handed-off treaty: folded base, member
        // slot, and the engine value rebased through its WAL.
        assert_eq!(workers[2].counter_base(&stock(0)), Some(85));
        assert_eq!(workers[2].engine().peek(stock(0).as_str()), 85);
        // ...and can commit on its own slice of the allowance.
        submit(
            &mut workers,
            2,
            SiteOp::Order {
                obj: stock(0),
                amount: 1,
                refill_to: None,
            },
        );
        let outcomes = workers[2].take_completed();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].committed);
    }

    #[test]
    fn a_leave_folds_the_leaver_and_evicts_it() {
        let mut workers = cluster(3);
        register(&mut workers, &stock(0), 90, 0);
        // Real deltas at the leaver must fold into the survivors' base.
        submit(
            &mut workers,
            2,
            SiteOp::Order {
                obj: stock(0),
                amount: 4,
                refill_to: None,
            },
        );
        assert!(workers[2].take_completed()[0].committed);
        let mut out = Outbox::new();
        workers[2].handle(usize::MAX, Message::Leave { site: 2 }, &mut out);
        route(&mut workers, out, 2);
        for worker in &workers[..2] {
            assert_eq!(worker.roster().epoch, 1);
            assert_eq!(worker.roster().members, vec![0, 1]);
        }
        assert_eq!(workers[0].counter_base(&stock(0)), Some(86));
        assert_eq!(workers[1].counter_base(&stock(0)), Some(86));
        // The retired site keeps routing metadata but commits nothing.
        submit(
            &mut workers,
            2,
            SiteOp::Order {
                obj: stock(0),
                amount: 1,
                refill_to: None,
            },
        );
        let outcomes = workers[2].take_completed();
        assert_eq!(outcomes, vec![OpOutcome::default()]);
        // Frames from the evicted site are dropped on the floor.
        let mut out = Outbox::new();
        workers[0].handle(
            2,
            Message::SyncRequest {
                origin: 2,
                req: 999,
                obj: stock(0),
                kind: SyncKind::Pin,
            },
            &mut out,
        );
        assert!(out.is_empty(), "evicted frame answered: {out:?}");
        assert_eq!(workers[0].stale_rejects, 1);
    }

    #[test]
    fn a_refused_join_leaves_the_joiner_isolated() {
        let mut workers = cluster(2);
        register(&mut workers, &stock(0), 10, 0);
        workers.push(SiteWorker::new_joining(
            2,
            mode(),
            1,
            Timer::fixed_zero(),
            Arc::new(Engine::new()),
        ));
        let mut out = Outbox::new();
        // The cluster is at epoch 0; demanding epoch 7 must be refused.
        workers[2].begin_join(0, "", Some(7), &mut out);
        route(&mut workers, out, 2);
        assert!(!workers[2].joining());
        assert_eq!(workers[2].roster().members, vec![2], "still a lone site");
        assert_eq!(workers[0].roster().epoch, 0);
        assert!(!workers[0].roster().contains(2));
    }
}
