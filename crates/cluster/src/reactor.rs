//! The per-site reactor: one epoll event loop multiplexing the listener,
//! every client connection and every peer socket of a [`SiteNode`].
//!
//! This replaces the thread-per-connection data plane (one acceptor thread,
//! one reader thread per connection, one sender thread per peer) with a
//! single nonblocking event loop per site:
//!
//! * **Readiness, not threads.** Every socket is nonblocking and registered
//!   with a level-triggered [`epoll::Poller`]; the loop sleeps in one
//!   `epoll_wait` and a wakeup costs a readiness scan instead of a context
//!   switch per connection. This is what lets a site hold tens of
//!   thousands of client connections on a handful of stacks.
//! * **Per-connection buffers.** Reads land in a shared scratch chunk and
//!   feed the connection's [`FrameAssembler`] (partial frames are
//!   per-connection state); writes queue whole encoded frames in a
//!   [`WriteQueue`] and flush with **vectored writes** (`writev` via
//!   [`Write::write_vectored`]), so one syscall drains many queued frames
//!   and a short write tears no frame.
//! * **Pipelined clients.** Outcome attribution is exact without any
//!   per-request correlation id: the [`SiteWorker`] completes operations
//!   strictly in submission order (head-of-line queue), so a FIFO of
//!   `(client, batch len)` entries maps completed outcomes back to the
//!   submitting connection. `PollRequest` takes a **watermark** — the
//!   client's submitted-operation count at the time the poll arrived — and
//!   is answered as soon as that many of *its* operations completed. A
//!   client may therefore keep any number of `Submit`+`PollRequest` pairs
//!   in flight; replies come back in poll order.
//! * **Backpressure by byte budget.** A client that stops draining its
//!   socket grows its write queue; past
//!   [`NodeOptions::client_queue_cap`](crate::tcp::NodeOptions) unflushed
//!   bytes it is disconnected. This replaces the old blanket 10-second
//!   write timeout: the site's memory is bounded per connection and a slow
//!   client never stalls the event loop. **Peer** queues stay unbounded —
//!   protocol frames must survive a peer reconnect (dropping them would
//!   wedge an ack barrier), and peers drain each other by construction.
//! * **Lazy peer links with epoch hygiene.** Outbound peer connections
//!   dial nonblocking on the first queued frame, announce with
//!   [`Message::Hello`] carrying this node's incarnation epoch, and retry
//!   with exponential backoff. A dead inbound peer connection, or a fresh
//!   one with a new epoch, marks the cached outbound socket stale before
//!   anything else can be written into it (see the fail-stop notes in
//!   [`crate::tcp`]).
//!
//! The loop wakes for three things: socket readiness, a byte on the waker
//! pipe ([`SiteNode::shutdown`](crate::tcp::SiteNode) writes one), and
//! reconnect-backoff deadlines (the `epoll_wait` timeout).

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, ErrorKind, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use epoll::{Events, Poller};
use homeo_telemetry::{CounterId, GaugeId, HistId, Registry};

use crate::msg::{FrameAssembler, Message, CLIENT_PEER};
use crate::worker::{Outbox, SiteWorker};

/// First reconnect delay after a failed peer connect.
pub(crate) const BACKOFF_MIN: Duration = Duration::from_millis(5);
/// Reconnect delay cap.
pub(crate) const BACKOFF_MAX: Duration = Duration::from_millis(200);
/// Default [`client_queue_cap`](crate::tcp::NodeOptions::client_queue_cap):
/// how many unflushed reply bytes a client connection may accumulate before
/// the site disconnects it.
pub const DEFAULT_CLIENT_QUEUE_CAP: usize = 32 * 1024 * 1024;
/// Listen backlog for site sockets (std's `TcpListener::bind` hardcodes
/// 128, too small for a high-fanout connect burst).
pub(crate) const LISTEN_BACKLOG: i32 = 1024;
/// Read scratch size per `read` syscall.
const READ_CHUNK: usize = 64 * 1024;
/// Cap on frames coalesced into one `writev`.
const WRITEV_BATCH: usize = 64;
/// Events drained per `epoll_wait`.
const EVENTS_PER_WAIT: usize = 1024;
/// Poller token of the site's listener.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Poller token of the shutdown waker pipe.
const TOKEN_WAKER: u64 = u64::MAX - 1;
/// First worker-facing client id. Site ids live below this floor — far
/// below, so a cluster can grow by join without ever colliding with a
/// client id (the old scheme started client ids at the *initial* site
/// count, which a joined site would have reused).
pub(crate) const CLIENT_ID_FLOOR: usize = 1 << 32;
/// Upper bound on site ids a `Hello` may announce: the peer tables grow to
/// the announced id, so an unauthenticated connection must not be able to
/// request a multi-gigabyte allocation.
pub(crate) const MAX_SITES: usize = 4096;

/// An outbound frame queue: whole encoded frames, flushed with vectored
/// writes. `offset` tracks the partially written front frame, so an
/// `EWOULDBLOCK` mid-frame resumes at the exact byte.
pub(crate) struct WriteQueue {
    frames: VecDeque<Vec<u8>>,
    offset: usize,
    unsent: usize,
}

impl WriteQueue {
    pub(crate) fn new() -> WriteQueue {
        WriteQueue {
            frames: VecDeque::new(),
            offset: 0,
            unsent: 0,
        }
    }

    /// Queues one encoded frame.
    pub(crate) fn push(&mut self, frame: Vec<u8>) {
        self.unsent += frame.len();
        self.frames.push_back(frame);
    }

    /// Unflushed bytes currently queued.
    pub(crate) fn bytes(&self) -> usize {
        self.unsent
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Flushes as much as the socket accepts, coalescing up to
    /// [`WRITEV_BATCH`] frames per `writev`. Returns `Ok(true)` when the
    /// queue drained, `Ok(false)` on `EWOULDBLOCK` (re-arm write interest
    /// and resume on the next writable event).
    pub(crate) fn flush(&mut self, stream: &mut (impl Write + ?Sized)) -> io::Result<bool> {
        while !self.frames.is_empty() {
            let mut slices: Vec<IoSlice<'_>> =
                Vec::with_capacity(self.frames.len().min(WRITEV_BATCH));
            let mut iter = self.frames.iter();
            if let Some(front) = iter.next() {
                slices.push(IoSlice::new(&front[self.offset..]));
            }
            slices.extend(iter.take(WRITEV_BATCH - 1).map(|f| IoSlice::new(f)));
            match stream.write_vectored(&slices) {
                Ok(0) => return Err(io::Error::from(ErrorKind::WriteZero)),
                Ok(n) => self.consume(n),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Advances the queue past `n` written bytes.
    fn consume(&mut self, mut n: usize) {
        self.unsent -= n;
        while n > 0 {
            let remaining = self.frames[0].len() - self.offset;
            if n >= remaining {
                n -= remaining;
                self.offset = 0;
                self.frames.pop_front();
            } else {
                self.offset += n;
                n = 0;
            }
        }
    }

    /// Surrenders the queued frames (for requeueing on a fresh peer
    /// connection). The partially written front frame is returned whole:
    /// the receiver's assembler died with the old connection, so a partial
    /// prefix was discarded there and the resend starts the frame over.
    pub(crate) fn into_frames(self) -> VecDeque<Vec<u8>> {
        self.frames
    }
}

/// Who a connection turned out to be (decided by its first frame).
enum Identity {
    /// Accepted, no `Hello` yet.
    Unknown,
    /// A client attachment.
    Client(ClientState),
    /// A peer's inbound connection (its frames carry this site id).
    PeerIn(usize),
    /// Our outbound connection to a peer; `connected` flips when the
    /// nonblocking connect completes.
    PeerOut { peer: usize, connected: bool },
}

/// Pipelining state of one client connection.
struct ClientState {
    /// Worker-facing id (`>= sites`, never reused).
    id: usize,
    /// Operations submitted over this connection.
    submitted: u64,
    /// Operations completed and attributed back to this connection.
    completed: u64,
    /// Operations whose outcomes already went out in a poll reply.
    delivered: u64,
    /// Completed outcomes not yet drained by a poll reply (indices
    /// `delivered..completed` of the connection's submission order).
    outcomes: Vec<homeo_runtime::OpOutcome>,
    /// Outstanding poll watermarks, in arrival order: each `PollRequest`
    /// waits for `completed` to reach the `submitted` count it saw.
    polls: VecDeque<u64>,
}

impl ClientState {
    fn new(id: usize) -> ClientState {
        ClientState {
            id,
            submitted: 0,
            completed: 0,
            delivered: 0,
            outcomes: Vec::new(),
            polls: VecDeque::new(),
        }
    }
}

/// One registered connection.
struct Conn {
    stream: TcpStream,
    asm: FrameAssembler,
    out: WriteQueue,
    /// Whether write interest is currently registered with the poller.
    want_write: bool,
    /// Whether the slot is already on the dirty (needs-flush) list.
    queued: bool,
    identity: Identity,
}

/// The outbound half of one site-to-peer link.
struct PeerLink {
    /// The peer's listen address. `None` until learned — links for sites
    /// that joined after this node started are created lazily, and the
    /// address arrives in the membership frames (`JoinRequest` /
    /// `JoinAck` / `MembershipInstall`) via the worker's address book.
    addr: Option<SocketAddr>,
    /// Connection slot of the live (or connecting) outbound socket.
    slot: Option<usize>,
    /// Frames waiting for a connection (and frames salvaged from a dead
    /// one). Unbounded by design; see the module docs.
    pending: VecDeque<Vec<u8>>,
    backoff: Duration,
    /// When set, no dial before this deadline (reconnect backoff).
    retry_at: Option<Instant>,
}

/// Pre-registered handles for the reactor's transport metrics, registered
/// into the owning [`SiteWorker`]'s registry so one `MetricsRequest`
/// answers for the whole site (protocol phases and transport alike).
struct ReactorMetrics {
    /// Frames decoded and dispatched (clients, peers and hellos).
    frames_in: CounterId,
    /// Frames queued for transmission through the outbox paths.
    frames_out: CounterId,
    /// Bytes read off sockets.
    bytes_in: CounterId,
    /// Bytes queued for transmission through the outbox paths.
    bytes_out: CounterId,
    /// Frames drained per flush call (the vectored-write batch size).
    writev_flush: HistId,
    /// Largest unflushed per-connection backlog at the last flush round.
    queue_bytes: GaugeId,
    /// Clients disconnected for exceeding the write-queue byte cap.
    backpressure: CounterId,
}

impl ReactorMetrics {
    fn register(reg: &mut Registry) -> ReactorMetrics {
        ReactorMetrics {
            frames_in: reg.counter("homeo_reactor_frames_in_total"),
            frames_out: reg.counter("homeo_reactor_frames_out_total"),
            bytes_in: reg.counter("homeo_reactor_bytes_in_total"),
            bytes_out: reg.counter("homeo_reactor_bytes_out_total"),
            writev_flush: reg.histogram("homeo_reactor_writev_flush_frames"),
            queue_bytes: reg.gauge("homeo_reactor_write_queue_bytes"),
            backpressure: reg.counter("homeo_reactor_backpressure_disconnects_total"),
        }
    }
}

/// Construction parameters of a [`Reactor`].
pub(crate) struct ReactorConfig {
    pub site: usize,
    pub epoch: u64,
    pub addrs: Vec<SocketAddr>,
    pub client_queue_cap: usize,
    /// `Some((contact, expected_epoch))` when this node starts by joining a
    /// live cluster: before serving traffic the reactor fires
    /// [`SiteWorker::begin_join`] at `contact` (see [`crate::worker`]'s
    /// epoch-roster rules).
    pub join: Option<(usize, Option<u64>)>,
}

/// The event loop of one site. Owns the listener, the poller, every
/// connection and the [`SiteWorker`] state machine; `run` consumes it.
pub(crate) struct Reactor {
    site: usize,
    epoch: u64,
    client_queue_cap: usize,
    poller: Poller,
    listener: TcpListener,
    waker: UnixStream,
    shutdown: Arc<AtomicBool>,
    worker: SiteWorker,
    conns: Vec<Option<Conn>>,
    /// Reusable connection slots.
    free: Vec<usize>,
    /// Slots freed while processing the current event batch: withheld from
    /// `free` until the batch is done, so a stale readiness event for a
    /// closed fd can never be misread as aimed at a fresh connection that
    /// reused its slot.
    freed_this_round: Vec<usize>,
    /// Live client connections: worker id → slot.
    clients: BTreeMap<usize, usize>,
    next_client: usize,
    peers: Vec<PeerLink>,
    /// Last incarnation epoch seen from each peer.
    peer_epochs: Vec<Option<u64>>,
    /// Worker outbox, pumped by `settle`.
    out: Outbox,
    outbox_scratch: Outbox,
    /// Self-addressed frames (handled next settle round, like every
    /// backend).
    self_queue: VecDeque<Message>,
    /// Submission-order FIFO of `(client id, ops remaining)` — how
    /// completed outcomes are attributed back to connections.
    inflight: VecDeque<(usize, u64)>,
    /// Clients whose polls may have become answerable.
    ready_clients: Vec<usize>,
    /// Clients waiting on a cluster-wide fold, in arrival order.
    sync_waiters: VecDeque<usize>,
    full_sync_inflight: bool,
    /// Slots with queued bytes to flush at the end of the round.
    dirty: Vec<usize>,
    /// Frame-encode scratch ([`Message::encode_into`]).
    scratch: Vec<u8>,
    /// Read scratch.
    chunk: Vec<u8>,
    /// Handles into the worker's registry for the transport metrics.
    metric_ids: ReactorMetrics,
    /// This site's own listen address as advertised to the cluster
    /// (carried in `JoinRequest` so existing members learn where to dial).
    my_addr: String,
    /// A pending `begin_join`, fired once at the top of `run`.
    join: Option<(usize, Option<u64>)>,
}

impl Reactor {
    /// Registers the listener and the waker pipe; connections and peer
    /// links come later (peers dial lazily on the first outbound frame).
    pub(crate) fn new(
        listener: TcpListener,
        waker: UnixStream,
        shutdown: Arc<AtomicBool>,
        mut worker: SiteWorker,
        cfg: ReactorConfig,
    ) -> io::Result<Reactor> {
        let metric_ids = ReactorMetrics::register(&mut worker.metrics);
        listener.set_nonblocking(true)?;
        waker.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.add(&listener, TOKEN_LISTENER, true, false)?;
        poller.add(&waker, TOKEN_WAKER, true, false)?;
        let sites = cfg.addrs.len();
        let peers = cfg
            .addrs
            .iter()
            .map(|&addr| PeerLink {
                addr: Some(addr),
                slot: None,
                pending: VecDeque::new(),
                backoff: BACKOFF_MIN,
                retry_at: None,
            })
            .collect();
        let my_addr = cfg
            .addrs
            .get(cfg.site)
            .map(|a| a.to_string())
            .unwrap_or_default();
        Ok(Reactor {
            site: cfg.site,
            epoch: cfg.epoch,
            client_queue_cap: cfg.client_queue_cap,
            poller,
            listener,
            waker,
            shutdown,
            worker,
            conns: Vec::new(),
            free: Vec::new(),
            freed_this_round: Vec::new(),
            clients: BTreeMap::new(),
            next_client: CLIENT_ID_FLOOR,
            peers,
            peer_epochs: vec![None; sites],
            out: Outbox::new(),
            outbox_scratch: Outbox::new(),
            self_queue: VecDeque::new(),
            inflight: VecDeque::new(),
            ready_clients: Vec::new(),
            sync_waiters: VecDeque::new(),
            full_sync_inflight: false,
            dirty: Vec::new(),
            scratch: Vec::new(),
            chunk: vec![0u8; READ_CHUNK],
            metric_ids,
            my_addr,
            join: cfg.join,
        })
    }

    /// The event loop. Returns when the shutdown flag is set (and the
    /// waker pipe poked); dropping the reactor closes every connection.
    pub(crate) fn run(mut self, recover_from: Option<usize>) {
        if let Some(buddy) = recover_from {
            let engine = self.worker.engine().clone();
            let mut out = std::mem::take(&mut self.out);
            self.worker.crash_restart(engine, buddy, &mut out);
            self.out = out;
        }
        if let Some((contact, expected_epoch)) = self.join.take() {
            let my_addr = self.my_addr.clone();
            let mut out = std::mem::take(&mut self.out);
            self.worker
                .begin_join(contact, &my_addr, expected_epoch, &mut out);
            self.out = out;
        }
        self.settle();
        self.flush_dirty();
        self.free.append(&mut self.freed_this_round);
        let mut events = Events::with_capacity(EVENTS_PER_WAIT);
        while !self.shutdown.load(Ordering::SeqCst) {
            let timeout = self
                .next_retry_deadline()
                .map(|at| at.saturating_duration_since(Instant::now()));
            if self.poller.wait(&mut events, timeout).is_err() {
                return; // the poller itself failed; nothing to salvage
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            for event in events.iter() {
                match event.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.drain_waker(),
                    token => {
                        let slot = token as usize;
                        if event.writable {
                            self.conn_writable(slot);
                        }
                        if event.readable {
                            self.conn_readable(slot);
                        }
                    }
                }
            }
            self.retry_due_peers();
            self.settle();
            self.flush_dirty();
            self.free.append(&mut self.freed_this_round);
        }
    }

    // ---- accept / waker ----

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.install_conn(stream, Identity::Unknown, true, false);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // Transient accept errors (e.g. the connection aborted
                // before we got to it): level-triggered readiness retries.
                Err(_) => return,
            }
        }
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 64];
        while matches!((&self.waker).read(&mut sink), Ok(n) if n > 0) {}
    }

    /// Registers a socket in a fresh (or reused) slot. Returns the slot,
    /// or `None` when registration failed (the socket is dropped).
    fn install_conn(
        &mut self,
        stream: TcpStream,
        identity: Identity,
        readable: bool,
        writable: bool,
    ) -> Option<usize> {
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            return None;
        }
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        if self
            .poller
            .add(&stream, slot as u64, readable, writable)
            .is_err()
        {
            self.free.push(slot);
            return None;
        }
        self.conns[slot] = Some(Conn {
            stream,
            asm: FrameAssembler::new(),
            out: WriteQueue::new(),
            want_write: writable,
            queued: false,
            identity,
        });
        Some(slot)
    }

    // ---- readable path ----

    fn conn_readable(&mut self, slot: usize) {
        loop {
            let read = match self.conns[slot].as_mut() {
                None => return,
                Some(conn) => conn.stream.read(&mut self.chunk),
            };
            match read {
                Ok(0) => {
                    self.close_conn(slot);
                    return;
                }
                Ok(n) => {
                    self.worker.metrics.add(self.metric_ids.bytes_in, n as u64);
                    if let Some(conn) = self.conns[slot].as_mut() {
                        conn.asm.push(&self.chunk[..n]);
                    }
                    self.drain_frames(slot);
                    if self.conns[slot].is_none() || n < self.chunk.len() {
                        // Closed by a protocol error, or the socket is
                        // (probably) drained — level-triggered readiness
                        // re-reports anything left.
                        return;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot);
                    return;
                }
            }
        }
    }

    fn drain_frames(&mut self, slot: usize) {
        loop {
            let next = match self.conns[slot].as_mut() {
                None => return,
                Some(conn) => conn.asm.next_message(),
            };
            match next {
                Ok(Some(msg)) => self.dispatch(slot, msg),
                Ok(None) => return,
                Err(e) => {
                    eprintln!(
                        "homeo-tcp site {}: protocol error on connection ({e}); closing",
                        self.site
                    );
                    self.close_conn(slot);
                    return;
                }
            }
        }
    }

    fn dispatch(&mut self, slot: usize, msg: Message) {
        self.worker.metrics.inc(self.metric_ids.frames_in);
        enum Kind {
            Unknown,
            Client(usize),
            PeerIn(usize),
            PeerOut,
        }
        let kind = match &self.conns[slot]
            .as_ref()
            .expect("dispatch on a live conn")
            .identity
        {
            Identity::Unknown => Kind::Unknown,
            Identity::Client(state) => Kind::Client(state.id),
            Identity::PeerIn(peer) => Kind::PeerIn(*peer),
            Identity::PeerOut { .. } => Kind::PeerOut,
        };
        match kind {
            Kind::Unknown => self.identify(slot, msg),
            Kind::PeerIn(peer) => self.worker.handle(peer, msg, &mut self.out),
            Kind::Client(id) => self.client_frame(slot, id, msg),
            Kind::PeerOut => {
                // The outbound half of a peer link is write-only by
                // protocol; inbound data on it is a violation.
                eprintln!(
                    "homeo-tcp site {}: unexpected frame on an outbound peer link; closing",
                    self.site
                );
                self.close_conn(slot);
            }
        }
    }

    /// The first frame must be a `Hello` identifying the connection.
    fn identify(&mut self, slot: usize, msg: Message) {
        match msg {
            Message::Hello { peer, .. } if peer == CLIENT_PEER => {
                let id = self.next_client;
                self.next_client += 1;
                if let Some(conn) = self.conns[slot].as_mut() {
                    conn.identity = Identity::Client(ClientState::new(id));
                }
                self.clients.insert(id, slot);
            }
            Message::Hello { peer, epoch } if (peer as usize) < MAX_SITES => {
                let peer = peer as usize;
                // The link tables grow on demand: a site that joined after
                // this node started announces an id past the founding
                // roster (bounded by `MAX_SITES`).
                self.ensure_peer_slot(peer);
                // A new incarnation of the peer: any cached outbound
                // socket to it predates its restart and must not be
                // written into again.
                if self.peer_epochs[peer].is_some_and(|known| known != epoch) {
                    self.drop_outbound_to(peer);
                }
                self.peer_epochs[peer] = Some(epoch);
                if let Some(conn) = self.conns[slot].as_mut() {
                    conn.identity = Identity::PeerIn(peer);
                }
            }
            other => {
                eprintln!(
                    "homeo-tcp site {}: connection opened with {other:?} instead of a Hello; \
                     closing",
                    self.site
                );
                self.close_conn(slot);
            }
        }
    }

    fn client_frame(&mut self, slot: usize, id: usize, msg: Message) {
        match msg {
            Message::Submit { ops } => {
                // No validation needed here: the worker completes unknown
                // counters and negative amounts as uncommitted no-ops, and
                // types a general transaction without a registered program
                // as an unsupported outcome — never a panic, never a
                // dropped connection.
                let n = ops.len() as u64;
                if n > 0 {
                    if let Some(Conn {
                        identity: Identity::Client(state),
                        ..
                    }) = self.conns[slot].as_mut()
                    {
                        state.submitted += n;
                    }
                    self.inflight.push_back((id, n));
                }
                self.worker
                    .handle(id, Message::Submit { ops }, &mut self.out);
            }
            Message::Seed { .. }
            | Message::RegisterProgram { .. }
            | Message::StateRequest
            | Message::Leave { .. } => {
                // `Leave` is admin-plane: any client may retire a site (the
                // worker validates membership). `JoinRequest` is *not*
                // client-reachable — a join is initiated by the joining
                // site itself over a peer link, so its ack routes back to a
                // dialable address.
                self.worker.handle(id, msg, &mut self.out);
            }
            Message::PollRequest => {
                if let Some(Conn {
                    identity: Identity::Client(state),
                    ..
                }) = self.conns[slot].as_mut()
                {
                    state.polls.push_back(state.submitted);
                }
                self.ready_clients.push(id);
            }
            Message::SyncAllRequest => self.sync_waiters.push_back(id),
            Message::StatsRequest => {
                let stats = self.worker.stats;
                self.queue_frame(slot, &Message::StatsReply { stats });
            }
            Message::MetricsRequest => {
                let text = self.worker.metrics_text();
                self.queue_frame(slot, &Message::MetricsReply { text });
            }
            other => {
                eprintln!(
                    "homeo-tcp site {}: client sent site-protocol frame {other:?}; closing \
                     its connection",
                    self.site
                );
                self.close_conn(slot);
            }
        }
    }

    // ---- writable path ----

    fn conn_writable(&mut self, slot: usize) {
        let connecting = match self.conns[slot].as_ref() {
            None => return,
            Some(conn) => matches!(
                conn.identity,
                Identity::PeerOut {
                    connected: false,
                    ..
                }
            ),
        };
        if connecting {
            self.finish_peer_connect(slot);
        } else {
            self.flush_conn(slot);
        }
    }

    /// A writable event on a connecting peer socket: the nonblocking
    /// connect finished — check `SO_ERROR`, then announce and drain.
    fn finish_peer_connect(&mut self, slot: usize) {
        let (peer, healthy) = {
            let conn = self.conns[slot].as_mut().expect("checked live");
            let Identity::PeerOut { peer, .. } = conn.identity else {
                unreachable!("finish_peer_connect on a non-peer conn")
            };
            (peer, matches!(conn.stream.take_error(), Ok(None)))
        };
        if !healthy {
            self.close_conn(slot); // schedules the backoff retry
            return;
        }
        self.peers[peer].backoff = BACKOFF_MIN;
        self.peers[peer].retry_at = None;
        let hello = Message::Hello {
            peer: self.site as u64,
            epoch: self.epoch,
        }
        .encode_into(&mut self.scratch);
        let pending = std::mem::take(&mut self.peers[peer].pending);
        {
            let conn = self.conns[slot].as_mut().expect("checked live");
            conn.identity = Identity::PeerOut {
                peer,
                connected: true,
            };
            conn.out.push(hello);
            for frame in pending {
                conn.out.push(frame);
            }
            // Read interest from here on (EOF detection); write interest
            // settles in flush_conn.
            conn.want_write = true;
            let _ = self.poller.modify(&conn.stream, slot as u64, true, true);
        }
        self.flush_conn(slot);
    }

    /// Flushes a connection's write queue, toggling write interest to
    /// match, and enforces the client byte cap.
    fn flush_conn(&mut self, slot: usize) {
        let mut over_cap = false;
        let mut flushed_frames = 0;
        let close = {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if matches!(
                conn.identity,
                Identity::PeerOut {
                    connected: false,
                    ..
                }
            ) {
                return; // nothing can be written before the connect completes
            }
            let frames_before = conn.out.frames.len();
            match conn.out.flush(&mut conn.stream) {
                Ok(drained) => {
                    flushed_frames = frames_before - conn.out.frames.len();
                    let want = !drained;
                    if want != conn.want_write {
                        conn.want_write = want;
                        let _ = self.poller.modify(&conn.stream, slot as u64, true, want);
                    }
                    over_cap = matches!(conn.identity, Identity::Client(_))
                        && conn.out.bytes() > self.client_queue_cap;
                    over_cap
                }
                Err(_) => true,
            }
        };
        if flushed_frames > 0 {
            self.worker
                .metrics
                .observe(self.metric_ids.writev_flush, flushed_frames as u64);
        }
        if over_cap {
            self.worker.metrics.inc(self.metric_ids.backpressure);
            eprintln!(
                "homeo-tcp site {}: client write queue exceeded {} bytes (peer not draining); \
                 disconnecting it",
                self.site, self.client_queue_cap
            );
        }
        if close {
            self.close_conn(slot);
        }
    }

    fn flush_dirty(&mut self) {
        let mut max_backlog = 0i64;
        while let Some(slot) = self.dirty.pop() {
            match self.conns[slot].as_mut() {
                Some(conn) => conn.queued = false,
                None => continue,
            }
            self.flush_conn(slot);
            if let Some(conn) = self.conns[slot].as_ref() {
                max_backlog = max_backlog.max(conn.out.bytes() as i64);
            }
        }
        self.worker
            .metrics
            .set(self.metric_ids.queue_bytes, max_backlog);
    }

    /// Queues an encoded frame on a connection and marks it for the
    /// end-of-round flush.
    fn queue_raw(&mut self, slot: usize, frame: Vec<u8>) {
        if let Some(conn) = self.conns[slot].as_mut() {
            self.worker.metrics.inc(self.metric_ids.frames_out);
            self.worker
                .metrics
                .add(self.metric_ids.bytes_out, frame.len() as u64);
            conn.out.push(frame);
            if !conn.queued {
                conn.queued = true;
                self.dirty.push(slot);
            }
        }
    }

    fn queue_frame(&mut self, slot: usize, msg: &Message) {
        let frame = msg.encode_into(&mut self.scratch);
        self.queue_raw(slot, frame);
    }

    // ---- teardown ----

    /// Closes a connection and runs the identity-specific cleanup. Safe on
    /// already-closed slots.
    fn close_conn(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].take() else {
            return;
        };
        let _ = self.poller.remove(&conn.stream);
        self.freed_this_round.push(slot);
        match conn.identity {
            Identity::Unknown => {}
            Identity::Client(state) => {
                self.clients.remove(&state.id);
                self.sync_waiters.retain(|w| *w != state.id);
                // Its inflight entries stay: outcome attribution consumes
                // them in order and drops outcomes addressed to the gone
                // client.
            }
            Identity::PeerIn(peer) => {
                // Fail-stop: the peer died with its sockets, so our cached
                // outbound link predates its next incarnation.
                self.drop_outbound_to(peer);
            }
            Identity::PeerOut { peer, connected } => {
                if self.peers[peer].slot == Some(slot) {
                    self.peers[peer].slot = None;
                }
                // Unsent frames survive the reconnect; fully written ones
                // are lost with the peer's RAM (it recovers from WAL +
                // StateRequest). Drop the connection's own Hello if it
                // never fully left — the fresh connection announces anew.
                let hello = Message::Hello {
                    peer: self.site as u64,
                    epoch: self.epoch,
                }
                .encode_into(&mut self.scratch);
                let mut frames = conn.out.into_frames();
                if frames.front() == Some(&hello) {
                    frames.pop_front();
                }
                while let Some(frame) = frames.pop_back() {
                    self.peers[peer].pending.push_front(frame);
                }
                if connected {
                    // An established link died: retry promptly (the remote
                    // may be restarting); backoff only grows on failed
                    // connects.
                    if !self.peers[peer].pending.is_empty() && self.peers[peer].retry_at.is_none() {
                        self.peers[peer].retry_at = Some(Instant::now());
                    }
                } else {
                    self.schedule_peer_retry(peer);
                }
            }
        }
    }

    // ---- peer links ----

    /// Marks the outbound socket to `peer` stale and salvages its queue.
    fn drop_outbound_to(&mut self, peer: usize) {
        if let Some(slot) = self.peers[peer].slot {
            self.close_conn(slot);
        }
    }

    fn enqueue_peer(&mut self, peer: usize, frame: Vec<u8>) {
        self.worker.metrics.inc(self.metric_ids.frames_out);
        self.worker
            .metrics
            .add(self.metric_ids.bytes_out, frame.len() as u64);
        if let Some(slot) = self.peers[peer].slot {
            if let Some(conn) = self.conns[slot].as_mut() {
                if matches!(
                    conn.identity,
                    Identity::PeerOut {
                        connected: true,
                        ..
                    }
                ) {
                    conn.out.push(frame);
                    if !conn.queued {
                        conn.queued = true;
                        self.dirty.push(slot);
                    }
                    return;
                }
            }
            // Still connecting: hold the frame so the Hello goes first.
            self.peers[peer].pending.push_back(frame);
            return;
        }
        self.peers[peer].pending.push_back(frame);
        if self.peers[peer].retry_at.is_none() {
            self.dial_peer(peer);
        }
    }

    /// Grows the peer link tables to cover `peer` (a site id announced by a
    /// `Hello` or addressed by the worker after a membership change), pulling
    /// each new link's address from the worker's address book if it already
    /// learned one.
    fn ensure_peer_slot(&mut self, peer: usize) {
        debug_assert!(peer < MAX_SITES, "site id {peer} out of bounds");
        while self.peers.len() <= peer {
            let idx = self.peers.len();
            let addr = self.worker.peer_addr(idx).and_then(|s| s.parse().ok());
            self.peers.push(PeerLink {
                addr,
                slot: None,
                pending: VecDeque::new(),
                backoff: BACKOFF_MIN,
                retry_at: None,
            });
            self.peer_epochs.push(None);
        }
    }

    fn dial_peer(&mut self, peer: usize) {
        debug_assert!(self.peers[peer].slot.is_none());
        if self.peers[peer].addr.is_none() {
            // The address book fills in as membership frames arrive
            // (`JoinAck` / `MembershipInstall` carry the roster's listen
            // addresses); re-check it on every dial attempt.
            self.peers[peer].addr = self.worker.peer_addr(peer).and_then(|s| s.parse().ok());
        }
        let Some(addr) = self.peers[peer].addr else {
            self.schedule_peer_retry(peer);
            return;
        };
        match epoll::connect_nonblocking(addr) {
            Ok(stream) => {
                let identity = Identity::PeerOut {
                    peer,
                    connected: false,
                };
                match self.install_conn(stream, identity, false, true) {
                    Some(slot) => self.peers[peer].slot = Some(slot),
                    None => self.schedule_peer_retry(peer),
                }
            }
            Err(_) => self.schedule_peer_retry(peer),
        }
    }

    fn schedule_peer_retry(&mut self, peer: usize) {
        let link = &mut self.peers[peer];
        link.retry_at = Some(Instant::now() + link.backoff);
        link.backoff = (link.backoff * 2).min(BACKOFF_MAX);
    }

    fn retry_due_peers(&mut self) {
        let now = Instant::now();
        for peer in 0..self.peers.len() {
            if self.peers[peer].retry_at.is_some_and(|at| at <= now) {
                self.peers[peer].retry_at = None;
                if !self.peers[peer].pending.is_empty() && self.peers[peer].slot.is_none() {
                    self.dial_peer(peer);
                }
            }
        }
    }

    fn next_retry_deadline(&self) -> Option<Instant> {
        self.peers.iter().filter_map(|link| link.retry_at).min()
    }

    // ---- the scheduling round ----

    /// Routes one worker outbox entry.
    fn ship(&mut self, to: usize, msg: Message) {
        if to == self.site {
            self.self_queue.push_back(msg);
        } else if to < CLIENT_ID_FLOOR {
            self.ensure_peer_slot(to);
            let frame = msg.encode_into(&mut self.scratch);
            self.enqueue_peer(to, frame);
        } else if let Some(&slot) = self.clients.get(&to) {
            self.queue_frame(slot, &msg);
        }
        // A reply addressed to a client that disconnected is dropped, like
        // every backend.
    }

    /// Settles the round: pump the outbox and self-deliveries to
    /// quiescence, attribute completed outcomes to their connections,
    /// answer every poll whose watermark is reached, and run the full-sync
    /// protocol.
    fn settle(&mut self) {
        loop {
            // Outbox + self-delivery pump.
            loop {
                if !self.out.is_empty() {
                    // Swap the outbox against an empty scratch so `ship`
                    // can refill `self.out` while this batch drains
                    // front-first (send order preserved, allocation
                    // reused).
                    std::mem::swap(&mut self.out, &mut self.outbox_scratch);
                    let mut batch = std::mem::take(&mut self.outbox_scratch);
                    for (to, msg) in batch.drain(..) {
                        self.ship(to, msg);
                    }
                    self.outbox_scratch = batch;
                    continue;
                }
                if let Some(msg) = self.self_queue.pop_front() {
                    let site = self.site;
                    self.worker.handle(site, msg, &mut self.out);
                    continue;
                }
                break;
            }
            // Attribute completed outcomes, strictly in submission order
            // (the worker is head-of-line, so counts are exact).
            for outcome in self.worker.take_completed() {
                let Some(entry) = self.inflight.front_mut() else {
                    debug_assert!(false, "completed outcome with no inflight submit");
                    break;
                };
                let id = entry.0;
                entry.1 -= 1;
                if entry.1 == 0 {
                    self.inflight.pop_front();
                }
                if let Some(&slot) = self.clients.get(&id) {
                    if let Some(Conn {
                        identity: Identity::Client(state),
                        ..
                    }) = self.conns[slot].as_mut()
                    {
                        state.completed += 1;
                        state.outcomes.push(outcome);
                    }
                }
                if self.ready_clients.last() != Some(&id) {
                    self.ready_clients.push(id);
                }
            }
            // Answer polls whose watermark is covered. Each reply carries
            // exactly the outcomes up to its own watermark (the operations
            // submitted before that poll and not yet delivered), so a
            // pipelined window of Submit+poll pairs correlates reply `k`
            // with batch `k`.
            let ready = std::mem::take(&mut self.ready_clients);
            for id in ready {
                let Some(&slot) = self.clients.get(&id) else {
                    continue;
                };
                loop {
                    let reply = {
                        let Some(Conn {
                            identity: Identity::Client(state),
                            ..
                        }) = self.conns[slot].as_mut()
                        else {
                            break;
                        };
                        match state.polls.front() {
                            Some(&mark) if state.completed >= mark => {
                                state.polls.pop_front();
                                let take = (mark.saturating_sub(state.delivered)) as usize;
                                state.delivered = state.delivered.max(mark);
                                Message::PollReply {
                                    outcomes: state.outcomes.drain(..take).collect(),
                                }
                            }
                            _ => break,
                        }
                    };
                    self.queue_frame(slot, &reply);
                }
            }
            // The cluster-wide fold: one at a time, next waiter when the
            // current one completes.
            if self.full_sync_inflight {
                if let Some(total) = self.worker.take_full_sync_result() {
                    self.full_sync_inflight = false;
                    if let Some(id) = self.sync_waiters.pop_front() {
                        if let Some(&slot) = self.clients.get(&id) {
                            let reply = Message::SyncAllReply {
                                solver_micros: total,
                            };
                            self.queue_frame(slot, &reply);
                        }
                    }
                }
            }
            if !self.full_sync_inflight
                && !self.sync_waiters.is_empty()
                && !self.worker.recovering()
            {
                self.worker.begin_full_sync(&mut self.out);
                self.full_sync_inflight = true;
                continue; // ship the fold requests, re-check completion
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_lang::ids::ObjId;
    use homeo_runtime::SiteOp;
    use homeo_sim::DetRng;
    use std::net::{Ipv4Addr, TcpListener};

    /// A seeded stream of protocol messages with wildly varying frame
    /// sizes (1 to ~200 ops per submit).
    fn seeded_messages(rng: &mut DetRng, count: usize) -> Vec<Message> {
        (0..count)
            .map(|_| match rng.index(4) {
                0 => Message::StateRequest,
                1 => Message::PollRequest,
                _ => Message::Submit {
                    ops: (0..1 + rng.index(200))
                        .map(|_| SiteOp::Increment {
                            obj: ObjId::new(format!("stock[{}]", rng.index(64))),
                            amount: rng.index(1000) as i64,
                        })
                        .collect(),
                },
            })
            .collect()
    }

    #[test]
    fn torn_writev_frames_reassemble_across_wouldblock_boundaries() {
        // A real nonblocking socket pair: the writer floods a WriteQueue
        // through vectored flushes until EWOULDBLOCK tears a frame
        // mid-write, the reader drains in seeded short reads. Every frame
        // must reassemble byte-identically, in order.
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut writer = TcpStream::connect(addr).expect("connect");
        let (mut reader, _) = listener.accept().expect("accept");
        writer.set_nonblocking(true).expect("nonblocking writer");
        reader.set_nonblocking(true).expect("nonblocking reader");

        let mut rng = DetRng::seed_from(0xE901);
        let sent = seeded_messages(&mut rng, 4_000);
        let mut queue = WriteQueue::new();
        let mut scratch = Vec::new();
        for msg in &sent {
            queue.push(msg.encode_into(&mut scratch));
        }
        let total_bytes = queue.bytes();

        let mut asm = FrameAssembler::new();
        let mut received: Vec<Message> = Vec::new();
        let mut chunk = vec![0u8; 8 * 1024];
        let mut saw_block = false;
        while !queue.is_empty() {
            match queue.flush(&mut writer) {
                Ok(true) => {}
                Ok(false) => saw_block = true,
                Err(e) => panic!("flush failed: {e}"),
            }
            // Drain the reader with seeded short reads so frame and chunk
            // boundaries never line up.
            loop {
                let want = 1 + rng.index(chunk.len());
                match reader.read(&mut chunk[..want]) {
                    Ok(0) => panic!("writer closed early"),
                    Ok(n) => asm.push(&chunk[..n]),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) => panic!("read failed: {e}"),
                }
                while let Some(msg) = asm.next_message().expect("reassembly stays clean") {
                    received.push(msg);
                }
            }
        }
        // Tail: everything flushed, drain what is still in flight.
        while received.len() < sent.len() {
            match reader.read(&mut chunk) {
                Ok(0) => panic!("writer closed early"),
                Ok(n) => asm.push(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => continue,
                Err(e) => panic!("read failed: {e}"),
            }
            while let Some(msg) = asm.next_message().expect("reassembly stays clean") {
                received.push(msg);
            }
        }
        assert!(
            saw_block,
            "{total_bytes} bytes never overran the socket buffer; the test needs more volume \
             to exercise the EWOULDBLOCK path"
        );
        assert_eq!(queue.bytes(), 0);
        assert_eq!(received, sent);
    }

    #[test]
    fn short_reads_of_any_seeded_shape_deliver_every_frame() {
        // Pure codec property: however the byte stream is cut — including
        // 1-byte reads straddling the length prefix — the assembler
        // delivers the same messages in the same order.
        for seed in [1u64, 7, 0xBEEF, 0x7C93] {
            let mut rng = DetRng::seed_from(seed);
            let sent = seeded_messages(&mut rng, 300);
            let mut stream = Vec::new();
            let mut scratch = Vec::new();
            for msg in &sent {
                stream.extend_from_slice(&msg.encode_into(&mut scratch));
            }
            let mut asm = FrameAssembler::new();
            let mut received = Vec::new();
            let mut cursor = 0usize;
            while cursor < stream.len() {
                let take = (1 + rng.index(97)).min(stream.len() - cursor);
                asm.push(&stream[cursor..cursor + take]);
                cursor += take;
                while let Some(msg) = asm.next_message().expect("clean stream") {
                    received.push(msg);
                }
            }
            assert_eq!(received, sent, "seed {seed}");
        }
    }

    #[test]
    fn a_write_queue_consumes_across_frame_boundaries_exactly() {
        // consume() is the resume-point bookkeeping for torn writes: walk
        // every split point of a three-frame queue through a sink that
        // writes one byte at a time.
        struct OneByte(Vec<u8>);
        impl Write for OneByte {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.push(buf[0]);
                Ok(1)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let frames: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![4], vec![5, 6, 7, 8, 9]];
        let mut queue = WriteQueue::new();
        for frame in &frames {
            queue.push(frame.clone());
        }
        assert_eq!(queue.bytes(), 9);
        let mut sink = OneByte(Vec::new());
        assert!(queue.flush(&mut sink).expect("flush"));
        assert!(queue.is_empty());
        assert_eq!(queue.bytes(), 0);
        assert_eq!(sink.0, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }
}
