//! # homeo-cluster
//!
//! The threaded, message-passing cluster subsystem: each site of the
//! replicated-counter protocol becomes an isolated worker that owns its
//! engine-backed shard and communicates with its peers **only** through a
//! [`Transport`] carrying length-prefixed serialized [`Message`] frames —
//! treaty negotiation, delta exchange, synchronization rounds and client
//! operations all go over the wire.
//!
//! The paper's central claim — sites execute without coordination while
//! treaties hold — was previously reproduced only under a single-threaded
//! loop over a virtual clock. This crate exercises it under the conditions
//! the claim is actually about:
//!
//! * [`ThreadedCluster`] — one OS thread per site over
//!   [`ChannelTransport`] (std `mpsc`): real concurrency, real channels,
//!   wall-clock throughput ([`threaded_load`]).
//! * [`SimCluster`] — the same per-site state machines
//!   ([`worker::SiteWorker`]) pumped deterministically over a
//!   [`sim::SimTransport`] fault injector: RTT-matrix delays, seeded
//!   jitter and reordering, drops surfaced as retransmission delay,
//!   symmetric partitions, and site kill/restart that reopens the engine
//!   from its WAL frame.
//! * [`TcpCluster`] — the same state machines over **real sockets**: one
//!   nonblocking epoll reactor per site (the `reactor` module) multiplexes
//!   the listener, every client connection and every peer link, with
//!   partial-frame reassembly, vectored-write flushes,
//!   reconnect-with-backoff, and the `homeostasisd` binary that runs sites
//!   as separate OS processes ([`tcp::SiteNode`], with [`tcp_load`] as
//!   the self-verifying, pipelining load client).
//!
//! [`ClusterRuntime`] wraps either backend behind
//! [`homeo_runtime::SiteRuntime`], so `drive()`, every workload and the
//! cross-protocol equivalence suites run unchanged on top of the cluster.
//!
//! ## Elastic membership
//!
//! Membership is dynamic on every backend: `join()` grows the cluster by
//! one site and `leave(site)` retires a member, both while load is in
//! flight. The cluster-wide membership is an epoch-stamped
//! [`homeo_protocol::Roster`]; a membership change runs as
//! [`SyncKind::Handoff`] rounds per counter (freeze → fold the members'
//! unsynchronized deltas → re-split allowances over the new member set →
//! re-map coordinators) and commits via an epoch-bumped
//! `MembershipInstall` under the usual ack barrier. The **epoch-roster
//! rules** — who may adopt which roster, how evicted members' frames are
//! fenced (`stale_rejects`), how WAL recovery lands in the current epoch,
//! and how program execution pins its registration-era membership — are
//! documented on the [`worker`] module, which implements them once for
//! all three backends.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod config;
pub mod msg;
mod reactor;
pub mod sim;
pub mod tcp;
pub mod threaded;
pub mod transport;
pub mod worker;

use homeo_lang::ids::ObjId;
use homeo_protocol::ReplicatedStats;
use homeo_runtime::{OpOutcome, SiteOp, SiteRuntime};
use homeo_store::Engine;

pub use api::ClientApi;
pub use config::ClusterSpec;
pub use homeo_protocol::{ClusterConfig, ProgramBundle, ProgramSet};
pub use msg::{CodecError, CounterMeta, FrameAssembler, Message, SyncKind, MAX_FRAME_LEN};
pub use reactor::DEFAULT_CLIENT_QUEUE_CAP;
pub use sim::{SimCluster, SimMetrics, SimNetConfig, SimTransport};
pub use tcp::{
    free_loopback_addrs, spawn_cluster, tcp_load, tcp_load_opts, DaemonFleet, LoadOptions,
    NodeOptions, SiteNode, TcpClient, TcpCluster, TcpLoadReport,
};
pub use threaded::{threaded_load, ClusterClient, Control, LoadReport, ThreadedCluster};
pub use transport::{ChannelTransport, Transport, CLIENT};

/// A cluster behind the shared [`SiteRuntime`] surface, backed by either
/// real worker threads ([`ThreadedCluster`]) or the deterministic fault
/// injector ([`SimCluster`]).
pub enum ClusterRuntime {
    /// One OS thread per site over channels.
    Threaded(Box<ThreadedCluster>),
    /// Virtual-clock scheduling with fault injection.
    Sim(Box<SimCluster>),
    /// One TCP endpoint per site over loopback sockets (the in-process form
    /// of the deployable `homeostasisd` path).
    Tcp(Box<TcpCluster>),
}

impl ClusterRuntime {
    /// A threaded cluster over fresh engines.
    pub fn threaded(sites: usize, config: ClusterConfig) -> Self {
        ClusterRuntime::Threaded(Box::new(ThreadedCluster::new(sites, config)))
    }

    /// A threaded cluster over pre-populated engines.
    pub fn threaded_from_engines(engines: Vec<Engine>, config: ClusterConfig) -> Self {
        ClusterRuntime::Threaded(Box::new(ThreadedCluster::from_engines(engines, config)))
    }

    /// A simulated cluster over fresh engines.
    pub fn sim(sites: usize, config: ClusterConfig, net: SimNetConfig) -> Self {
        ClusterRuntime::Sim(Box::new(SimCluster::new(sites, config, net)))
    }

    /// A simulated cluster over pre-populated engines.
    pub fn sim_from_engines(
        engines: Vec<Engine>,
        config: ClusterConfig,
        net: SimNetConfig,
    ) -> Self {
        ClusterRuntime::Sim(Box::new(SimCluster::from_engines(engines, config, net)))
    }

    /// A TCP cluster over fresh engines (ephemeral loopback ports).
    pub fn tcp(sites: usize, config: ClusterConfig) -> Self {
        ClusterRuntime::Tcp(Box::new(TcpCluster::new(sites, config)))
    }

    /// A TCP cluster over pre-populated engines.
    pub fn tcp_from_engines(engines: Vec<Engine>, config: ClusterConfig) -> Self {
        ClusterRuntime::Tcp(Box::new(TcpCluster::from_engines(engines, config)))
    }

    /// Registers a counter cluster-wide. Returns the solver time in
    /// microseconds.
    pub fn register(&mut self, obj: ObjId, initial: i64, lower_bound: i64) -> u64 {
        match self {
            ClusterRuntime::Threaded(c) => c.register(obj, initial, lower_bound),
            ClusterRuntime::Sim(c) => c.register(obj, initial, lower_bound),
            ClusterRuntime::Tcp(c) => c.register(obj, initial, lower_bound),
        }
    }

    /// Registers a general-transaction program bundle cluster-wide: every
    /// site parses the source text, runs the same analysis, and negotiates
    /// its own (deterministic, identical) treaty table, after which
    /// [`SiteOp::Transaction`] operations execute on any site. Returns the
    /// number of registered transactions (0 if the bundle was rejected).
    pub fn register_program(&mut self, bundle: &ProgramBundle) -> u64 {
        match self {
            ClusterRuntime::Threaded(c) => c.register_program(bundle),
            ClusterRuntime::Sim(c) => c.register_program(bundle),
            ClusterRuntime::Tcp(c) => c.register_program(bundle),
        }
    }

    /// Aggregate statistics across every site.
    pub fn stats(&self) -> ReplicatedStats {
        match self {
            ClusterRuntime::Threaded(c) => c.stats(),
            ClusterRuntime::Sim(c) => c.stats(),
            ClusterRuntime::Tcp(c) => c.stats(),
        }
    }

    /// Every site's rendered telemetry dump (the Prometheus-style text a
    /// live node serves for [`Message::MetricsRequest`]), in site order.
    /// A killed TCP site renders as an empty string.
    pub fn metrics_text(&self) -> Vec<String> {
        match self {
            ClusterRuntime::Threaded(c) => c.metrics(),
            ClusterRuntime::Sim(c) => c.metrics_text(),
            ClusterRuntime::Tcp(c) => c
                .metrics()
                .into_iter()
                .map(Option::unwrap_or_default)
                .collect(),
        }
    }
}

impl SiteRuntime for ClusterRuntime {
    fn sites(&self) -> usize {
        match self {
            ClusterRuntime::Threaded(c) => c.sites(),
            ClusterRuntime::Sim(c) => c.sites(),
            ClusterRuntime::Tcp(c) => c.sites(),
        }
    }

    fn engine(&self, site: usize) -> &Engine {
        match self {
            ClusterRuntime::Threaded(c) => c.engine(site),
            ClusterRuntime::Sim(c) => c.engine(site),
            ClusterRuntime::Tcp(c) => c.engine(site),
        }
    }

    fn submit(&mut self, site: usize, op: SiteOp) {
        match self {
            ClusterRuntime::Threaded(c) => c.submit(site, op),
            ClusterRuntime::Sim(c) => c.submit(site, op),
            ClusterRuntime::Tcp(c) => c.submit(site, op),
        }
    }

    fn poll(&mut self, site: usize) -> Vec<OpOutcome> {
        match self {
            ClusterRuntime::Threaded(c) => c.poll(site),
            ClusterRuntime::Sim(c) => c.poll(site),
            ClusterRuntime::Tcp(c) => c.poll(site),
        }
    }

    fn submit_batch(&mut self, site: usize, ops: &[SiteOp]) -> Vec<OpOutcome> {
        match self {
            ClusterRuntime::Threaded(c) => c.submit_batch(site, ops),
            ClusterRuntime::Sim(c) => c.submit_batch(site, ops),
            ClusterRuntime::Tcp(c) => c.submit_batch(site, ops),
        }
    }

    fn synchronize(&mut self, site: usize) -> u64 {
        match self {
            ClusterRuntime::Threaded(c) => c.synchronize(site),
            ClusterRuntime::Sim(c) => c.synchronize(site),
            ClusterRuntime::Tcp(c) => c.synchronize(site),
        }
    }

    fn ensure_registered(&mut self, obj: &ObjId, initial: i64, lower_bound: i64) {
        match self {
            ClusterRuntime::Threaded(c) => c.ensure_registered(obj, initial, lower_bound),
            ClusterRuntime::Sim(c) => c.ensure_registered(obj, initial, lower_bound),
            ClusterRuntime::Tcp(c) => c.ensure_registered(obj, initial, lower_bound),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_protocol::ReplicatedMode;
    use homeo_sim::clock::millis;
    use homeo_sim::Timer;
    use homeo_sim::{ClientOutcome, ClosedLoopConfig, CostComponents, DetRng};

    fn stock(i: usize) -> ObjId {
        ObjId::new(format!("stock[{i}]"))
    }

    #[test]
    fn drive_runs_unchanged_over_both_backends() {
        // The closed-loop driver from homeo-runtime drives the cluster the
        // same way it drives the single-threaded runtimes.
        let config = ClosedLoopConfig {
            replicas: 2,
            clients_per_replica: 4,
            warmup: millis(100),
            measure: millis(1_000),
            seed: 9,
            cores_per_replica: 8,
        };
        let cluster_config =
            ClusterConfig::new(ReplicatedMode::EvenSplit).with_timer(Timer::fixed_zero());
        let backends: Vec<ClusterRuntime> = vec![
            ClusterRuntime::threaded(2, cluster_config.clone()),
            ClusterRuntime::sim(2, cluster_config.clone(), SimNetConfig::reliable(2, 100)),
            ClusterRuntime::tcp(2, cluster_config),
        ];
        for mut runtime in backends {
            for i in 0..40 {
                runtime.register(stock(i), 100, 1);
            }
            let mut workload = |site: usize, rt: &mut dyn SiteRuntime, rng: &mut DetRng| {
                let out = rt.execute(
                    site,
                    SiteOp::Order {
                        obj: stock(rng.index(40)),
                        amount: 1,
                        refill_to: Some(99),
                    },
                );
                ClientOutcome {
                    committed: out.committed,
                    synchronized: out.synchronized,
                    costs: CostComponents {
                        local: 2_000,
                        communication: if out.synchronized { millis(200) } else { 0 },
                        solver: out.solver_micros,
                    },
                }
            };
            let metrics = homeo_runtime::drive(&config, &mut runtime, &mut workload);
            assert!(metrics.counters.committed > 50);
            assert!(runtime.stats().local_commits > 0);
            assert!(runtime.engine(0).wal_len() > 0);
        }
    }

    #[test]
    fn execute_contract_holds_on_the_cluster() {
        let mut runtime = ClusterRuntime::threaded(
            2,
            ClusterConfig::new(ReplicatedMode::EvenSplit).with_timer(Timer::fixed_zero()),
        );
        runtime.register(stock(0), 100, 1);
        let out = runtime.execute(
            0,
            SiteOp::Order {
                obj: stock(0),
                amount: 1,
                refill_to: Some(99),
            },
        );
        assert!(out.committed);
        assert_eq!(runtime.value_at(0, &stock(0)), 99);
    }
}
