//! The real-socket backend: sites as TCP endpoints over `std::net`
//! loopback/LAN sockets.
//!
//! This is the first deployment path where the cluster runs as separate OS
//! processes: every frame of the protocol — client batches, treaty
//! negotiation, delta exchange, synchronization rounds, crash recovery —
//! crosses an actual socket with partial reads, kernel buffering and
//! connection loss in play. The pieces:
//!
//! * [`TcpTransport`] — the [`Transport`] implementation: one dedicated
//!   sender thread per peer with an outbound queue,
//!   reconnect-with-exponential-backoff on connection drop, and
//!   [`FrameAssembler`]-based partial-frame reassembly on the read side.
//! * [`SiteNode`] — one running site: an acceptor thread for its listen
//!   address, one reader thread per live connection, and an event loop that
//!   pumps the same [`SiteWorker`] state machine the threaded and simulated
//!   backends run. Client-protocol frames (`PollRequest`, `SyncAllRequest`,
//!   `StatsRequest`) are answered by the node loop, which is what the
//!   `homeostasisd` binary runs per site.
//! * [`TcpClient`] — a client attachment over one TCP connection: seed
//!   counters, submit batches, poll outcomes, force a full fold, fetch
//!   state and statistics.
//! * [`TcpCluster`] — the in-process form (all sites in one process, every
//!   frame still over loopback TCP) behind [`SiteRuntime`], so `drive()`,
//!   the equivalence suites and the throughput sweep get a `cluster-tcp`
//!   mode for free. It also models fail-stop crashes:
//!   [`TcpCluster::kill`] / [`TcpCluster::restart`] mirror the simulator's
//!   kill/restart (WAL-recovered engine, treaty refetch from a peer).
//! * [`tcp_load`] — the `homeo-load` client: drives `submit_batch` traffic
//!   over TCP from one thread per site and **self-verifies counter
//!   conservation** at the end (fold everything, check every site agrees
//!   and the folded total equals the seeded total minus the committed
//!   decrements).
//!
//! # Failure model
//!
//! Fail-stop, like the simulator: a connection drop is treated as a peer
//! crash/restart boundary. Frames already accepted by the kernel when a
//! peer dies are lost with the peer's RAM (its engine recovers from the
//! WAL, its treaty state from a live peer); frames still queued on the
//! sender side survive the reconnect.
//!
//! Stale-socket detection matters because TCP accepts one more write into a
//! half-closed socket before the reset comes back — a frame written there
//! vanishes silently. Two signals mark an outbound socket stale *before*
//! that write can happen: the peer's inbound connection reaching EOF (the
//! peer died — its sockets closed with it), and a fresh inbound connection
//! carrying a **new incarnation epoch** in its [`Message::Hello`] (the peer
//! restarted). A reconnect by the same incarnation keeps the same epoch, so
//! it does not cascade into mutual connection resets.
//!
//! # Trust model
//!
//! The *byte* layer is hardened against hostile input — bounded length
//! prefixes, decode errors close the connection, clients speaking the
//! site-to-site protocol are dropped — but peer *identity* is not
//! authenticated: a connection announcing `Hello { peer: N }` is believed.
//! Sites must only be reachable from the cluster's own network (loopback
//! here; a private segment or an authenticating proxy in any real
//! deployment), exactly like the unauthenticated intra-cluster ports of
//! most coordination systems.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{Ipv4Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use homeo_lang::ids::ObjId;
use homeo_protocol::{negotiate_allowances, ReplicatedStats, WorkloadHints};
use homeo_runtime::{OpOutcome, SiteOp, SiteRuntime};
use homeo_sim::{DetRng, Timer};
use homeo_store::Engine;

use crate::config::ClusterSpec;
use crate::msg::{CounterMeta, FrameAssembler, Message, CLIENT_PEER};
use crate::transport::Transport;
use crate::worker::{Outbox, SiteWorker};
use crate::ClusterConfig;

/// How often blocked reads wake to check the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);
/// First reconnect delay after a failed connect/write.
const BACKOFF_MIN: Duration = Duration::from_millis(5);
/// Reconnect delay cap.
const BACKOFF_MAX: Duration = Duration::from_millis(200);
/// A client request with no reply within this window is a dead site.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(30);
/// Writes blocked longer than this mark the connection dead. The node
/// event loop is single-threaded and writes client replies while holding
/// the clients map, so a client that stops draining its socket must stall
/// the site for at most this long before being dropped, not forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Per-process counter behind incarnation epochs: combined with the
/// process id, every [`SiteNode`] spawn gets an epoch no other incarnation
/// of the site (in this process or another) announces.
static NEXT_EPOCH: AtomicUsize = AtomicUsize::new(1);

fn fresh_epoch() -> u64 {
    ((std::process::id() as u64) << 32) ^ NEXT_EPOCH.fetch_add(1, Ordering::Relaxed) as u64
}

/// Reserves `n` distinct loopback addresses by briefly binding ephemeral
/// listeners. The self-contained smoke scenario uses this to write a config
/// for the daemons it spawns; the tiny close-to-rebind window is acceptable
/// on a CI loopback.
pub fn free_loopback_addrs(n: usize) -> std::io::Result<Vec<SocketAddr>> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind((Ipv4Addr::LOCALHOST, 0)))
        .collect::<std::io::Result<_>>()?;
    listeners.iter().map(|l| l.local_addr()).collect()
}

/// What the node event loop receives from reader threads (and itself).
enum NodeInput {
    /// A decoded message from connection `from` (a site id, or a client
    /// connection id `>= sites`).
    Msg { from: usize, msg: Message },
    /// A client connection closed.
    ClientGone(usize),
    /// Stop the event loop.
    Shutdown,
}

/// State shared between the acceptor, the reader threads, the per-peer
/// sender threads and the event loop of one site.
struct NodeShared {
    site: usize,
    sites: usize,
    shutdown: AtomicBool,
    /// Client connection ids start at `sites` so they never collide with
    /// site ids in the worker's outbox destinations.
    next_client: AtomicUsize,
    /// Write halves of live client connections, keyed by connection id.
    clients: Mutex<BTreeMap<usize, TcpStream>>,
    /// Tokens for entries in `conns` (distinct from client ids: every
    /// accepted connection gets one, peers included).
    next_conn: AtomicUsize,
    /// Clones of live accepted connections, keyed by connection token:
    /// shut down at node shutdown so blocked peers/readers fail fast.
    /// Each reader removes its own entry on exit, so connection churn
    /// (client reconnects, per-call stats connections, peer restarts)
    /// does not leak file descriptors over a daemon's lifetime.
    conns: Mutex<BTreeMap<usize, TcpStream>>,
    /// Live reader thread handles, joined at shutdown (the acceptor prunes
    /// finished ones as connections come and go).
    readers: Mutex<Vec<JoinHandle<()>>>,
    /// `peer_resets[p]` set when site `p` is known to have died or
    /// restarted: the sender thread for `p` must drop its cached socket
    /// before the next write (the old one predates `p`'s restart).
    peer_resets: Vec<AtomicBool>,
    /// Last incarnation epoch seen from each peer — how a fresh inbound
    /// connection is classified as a restart (new epoch, reset) versus a
    /// reconnect by the same incarnation (same epoch, keep the socket).
    peer_epochs: Mutex<Vec<Option<u64>>>,
}

/// The [`Transport`] over real sockets, as owned by one site's event loop:
/// per-peer outbound queues drained by reconnecting sender threads, plus
/// direct writes to client connections and a self-delivery shortcut.
pub struct TcpTransport {
    site: usize,
    input: Sender<NodeInput>,
    peers: Vec<Option<Sender<Vec<u8>>>>,
    shared: Arc<NodeShared>,
    /// Per-connection frame-encode scratch ([`Message::encode_into`]).
    scratch: Vec<u8>,
}

impl TcpTransport {
    /// Ships one outbox message without re-encoding on the self path (the
    /// node loop's form of [`Transport::send`] — same routing, but it
    /// still holds the decoded message).
    fn ship(&mut self, to: usize, msg: Message) {
        if to == self.site {
            let _ = self.input.send(NodeInput::Msg {
                from: self.site,
                msg,
            });
        } else if to < self.peers.len() {
            let frame = msg.encode_into(&mut self.scratch);
            self.enqueue_peer(to, frame);
        } else {
            self.send_client(to, &msg);
        }
    }

    /// Hands an encoded frame to the destination peer's sender thread.
    fn enqueue_peer(&mut self, to: usize, frame: Vec<u8>) {
        if let Some(queue) = &self.peers[to] {
            let _ = queue.send(frame);
        }
    }

    /// Writes a message to a client connection.
    fn send_client(&mut self, id: usize, msg: &Message) {
        let frame = msg.encode_into(&mut self.scratch);
        self.write_client(id, &frame);
    }

    /// Writes an encoded frame to a client connection; a failed write drops
    /// the client and surfaces it to the event loop as
    /// [`NodeInput::ClientGone`].
    fn write_client(&mut self, id: usize, frame: &[u8]) {
        let mut clients = self.shared.clients.lock().expect("clients lock");
        if let Some(stream) = clients.get_mut(&id) {
            if stream.write_all(frame).is_err() {
                clients.remove(&id);
                drop(clients);
                let _ = self.input.send(NodeInput::ClientGone(id));
            }
        }
    }

    /// Closes a client connection (protocol violation).
    fn drop_client(&mut self, id: usize) {
        if let Some(stream) = self
            .shared
            .clients
            .lock()
            .expect("clients lock")
            .remove(&id)
        {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

impl Transport for TcpTransport {
    /// The raw-frame form of [`TcpTransport::ship`], sharing its routing
    /// helpers: peers get the frame queued to their sender thread, clients
    /// get it written to their connection, and self-delivery goes back
    /// through the input channel (preserving the "own frames are handled in
    /// a later round" ordering the other backends have — at the cost of a
    /// decode the node loop's `ship` avoids).
    fn send(&mut self, from: usize, to: usize, frame: Vec<u8>) {
        if to == self.site {
            match Message::decode(&frame) {
                Ok(msg) => {
                    let _ = self.input.send(NodeInput::Msg { from, msg });
                }
                Err(e) => debug_assert!(false, "self-addressed frame failed to decode: {e}"),
            }
        } else if to < self.peers.len() {
            self.enqueue_peer(to, frame);
        } else {
            self.write_client(to, &frame);
        }
    }
}

/// The outbound half of one site-to-peer link: connect (with backoff),
/// announce with [`Message::Hello`], then drain the frame queue, reconnecting
/// and resending the in-hand frame on any write failure.
fn peer_sender_loop(
    site: usize,
    epoch: u64,
    peer: usize,
    addr: SocketAddr,
    frames: Receiver<Vec<u8>>,
    shared: Arc<NodeShared>,
) {
    let hello = Message::Hello {
        peer: site as u64,
        epoch,
    }
    .encode();
    let mut stream: Option<TcpStream> = None;
    let mut backoff = BACKOFF_MIN;
    'frames: loop {
        let frame = match frames.recv() {
            Ok(frame) => frame,
            Err(_) => return, // node shut down
        };
        loop {
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            if shared.peer_resets[peer].swap(false, Ordering::Relaxed) {
                // The peer restarted (its fresh inbound connection arrived):
                // the cached socket is dead even if the kernel still accepts
                // writes into it.
                stream = None;
            }
            if stream.is_none() {
                if let Ok(mut fresh) = TcpStream::connect(addr) {
                    let _ = fresh.set_nodelay(true);
                    // A blocked write is a dead peer: error out (this
                    // sender keeps the frame and reconnects) instead of
                    // hanging the sender thread on a full buffer.
                    let _ = fresh.set_write_timeout(Some(WRITE_TIMEOUT));
                    if fresh.write_all(&hello).is_ok() {
                        backoff = BACKOFF_MIN;
                        stream = Some(fresh);
                    }
                }
                if stream.is_none() {
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(BACKOFF_MAX);
                    continue;
                }
            }
            match stream.as_mut().expect("connected").write_all(&frame) {
                Ok(()) => continue 'frames,
                Err(_) => stream = None,
            }
        }
    }
}

/// Accepts connections for one site and spawns a reader thread per
/// connection.
fn acceptor_loop(listener: TcpListener, shared: Arc<NodeShared>, input: Sender<NodeInput>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(READ_POLL));
        // Applies to the write half cloned into the clients map (socket
        // options live on the underlying socket, not the handle): a reply
        // write into a full send buffer errors out instead of blocking the
        // event loop forever, and the erroring client is dropped.
        let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
        let conn_token = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared
                .conns
                .lock()
                .expect("conns lock")
                .insert(conn_token, clone);
        }
        let reader_shared = shared.clone();
        let reader_input = input.clone();
        let handle = std::thread::Builder::new()
            .name(format!("homeo-tcp-{}-reader", shared.site))
            .spawn(move || reader_loop(stream, conn_token, reader_shared, reader_input))
            .expect("spawn reader thread");
        let mut readers = shared.readers.lock().expect("readers lock");
        readers.retain(|reader| !reader.is_finished());
        readers.push(handle);
    }
}

/// The inbound half of one connection: reassemble frames from whatever the
/// socket returns, identify the sender from its `Hello`, and feed decoded
/// messages to the event loop. Any codec error is a fatal protocol error
/// for this connection: log it and close.
fn reader_loop(
    mut stream: TcpStream,
    conn_token: usize,
    shared: Arc<NodeShared>,
    input: Sender<NodeInput>,
) {
    let mut asm = FrameAssembler::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut from: Option<usize> = None;
    let mut client_id: Option<usize> = None;
    'conn: while !shared.shutdown.load(Ordering::Relaxed) {
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(_) => break,
        };
        asm.push(&chunk[..n]);
        loop {
            let msg = match asm.next_message() {
                Ok(Some(msg)) => msg,
                Ok(None) => break,
                Err(e) => {
                    eprintln!(
                        "homeo-tcp site {}: protocol error on connection ({e}); closing",
                        shared.site
                    );
                    break 'conn;
                }
            };
            let Some(from) = from else {
                // The first frame must identify the connection.
                match msg {
                    Message::Hello { peer, .. } if peer == CLIENT_PEER => {
                        let id = shared.next_client.fetch_add(1, Ordering::Relaxed);
                        match stream.try_clone() {
                            Ok(write_half) => {
                                shared
                                    .clients
                                    .lock()
                                    .expect("clients lock")
                                    .insert(id, write_half);
                                client_id = Some(id);
                                from = Some(id);
                            }
                            Err(_) => break 'conn,
                        }
                    }
                    Message::Hello { peer, epoch } if (peer as usize) < shared.sites => {
                        let peer = peer as usize;
                        // A new incarnation of the peer: any cached
                        // outbound socket to it predates its restart.
                        let mut epochs = shared.peer_epochs.lock().expect("epochs lock");
                        if epochs[peer].is_some_and(|known| known != epoch) {
                            shared.peer_resets[peer].store(true, Ordering::Relaxed);
                        }
                        epochs[peer] = Some(epoch);
                        drop(epochs);
                        from = Some(peer);
                    }
                    other => {
                        eprintln!(
                            "homeo-tcp site {}: connection opened with {other:?} instead of a \
                             Hello; closing",
                            shared.site
                        );
                        break 'conn;
                    }
                }
                continue;
            };
            if input.send(NodeInput::Msg { from, msg }).is_err() {
                break 'conn; // event loop gone
            }
        }
    }
    shared.conns.lock().expect("conns lock").remove(&conn_token);
    if let Some(id) = client_id {
        shared.clients.lock().expect("clients lock").remove(&id);
        let _ = input.send(NodeInput::ClientGone(id));
    } else if let Some(peer) = from.filter(|f| *f < shared.sites) {
        // A peer connection died: the peer's incarnation is gone (fail-stop),
        // so our cached outbound socket to it is dead too. Marking it stale
        // now — before any post-restart write — is what keeps the first
        // frame to the restarted peer from vanishing into a half-closed
        // socket.
        shared.peer_resets[peer].store(true, Ordering::Relaxed);
    }
}

/// Construction parameters of a [`SiteNode`].
pub struct NodeOptions {
    /// This node's site id.
    pub site: usize,
    /// Listen address of every site, indexed by site id.
    pub addrs: Vec<SocketAddr>,
    /// Shared cluster configuration (mode, timer, hints).
    pub config: ClusterConfig,
    /// The site's storage engine.
    pub engine: Arc<Engine>,
    /// When restarting after a crash: a live peer to refetch treaty state
    /// from (`StateRequest`), after the engine was reopened from its WAL.
    pub recover_from: Option<usize>,
}

/// One running TCP site: the acceptor, reader, sender and event-loop
/// threads behind one listen address. `homeostasisd` runs one (or all) of
/// these per process; [`TcpCluster`] runs all of them in-process.
pub struct SiteNode {
    site: usize,
    addr: SocketAddr,
    input: Sender<NodeInput>,
    shared: Arc<NodeShared>,
    handles: Vec<JoinHandle<()>>,
    engine: Arc<Engine>,
}

impl SiteNode {
    /// Binds `opts.addrs[opts.site]` and spawns the node.
    pub fn bind(opts: NodeOptions) -> std::io::Result<SiteNode> {
        let listener = TcpListener::bind(opts.addrs[opts.site])?;
        Ok(SiteNode::spawn(listener, opts))
    }

    /// Spawns the node on an already-bound listener (how [`TcpCluster`]
    /// hands out ephemeral loopback ports race-free).
    pub fn spawn(listener: TcpListener, opts: NodeOptions) -> SiteNode {
        let NodeOptions {
            site,
            addrs,
            config,
            engine,
            recover_from,
        } = opts;
        let sites = addrs.len();
        assert!(site < sites, "site {site} out of range for {sites} sites");
        let addr = listener
            .local_addr()
            .expect("bound listener has an address");
        let epoch = fresh_epoch();
        let (input, rx) = channel::<NodeInput>();
        let shared = Arc::new(NodeShared {
            site,
            sites,
            shutdown: AtomicBool::new(false),
            next_client: AtomicUsize::new(sites),
            clients: Mutex::new(BTreeMap::new()),
            next_conn: AtomicUsize::new(0),
            conns: Mutex::new(BTreeMap::new()),
            readers: Mutex::new(Vec::new()),
            peer_resets: (0..sites).map(|_| AtomicBool::new(false)).collect(),
            peer_epochs: Mutex::new(vec![None; sites]),
        });
        let mut handles = Vec::new();
        let mut peers: Vec<Option<Sender<Vec<u8>>>> = Vec::with_capacity(sites);
        for (peer, peer_addr) in addrs.iter().copied().enumerate() {
            if peer == site {
                peers.push(None);
                continue;
            }
            let (tx, frames) = channel::<Vec<u8>>();
            let sender_shared = shared.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("homeo-tcp-{site}-to-{peer}"))
                    .spawn(move || {
                        peer_sender_loop(site, epoch, peer, peer_addr, frames, sender_shared)
                    })
                    .expect("spawn peer sender thread"),
            );
            peers.push(Some(tx));
        }
        let acceptor_shared = shared.clone();
        let acceptor_input = input.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("homeo-tcp-{site}-accept"))
                .spawn(move || acceptor_loop(listener, acceptor_shared, acceptor_input))
                .expect("spawn acceptor thread"),
        );
        let worker = SiteWorker::new(
            site,
            sites,
            config.mode,
            config.hints(sites),
            config.timer,
            engine.clone(),
        );
        let transport = TcpTransport {
            site,
            input: input.clone(),
            peers,
            shared: shared.clone(),
            scratch: Vec::new(),
        };
        handles.push(
            std::thread::Builder::new()
                .name(format!("homeo-tcp-{site}-loop"))
                .spawn(move || node_loop(worker, rx, transport, recover_from))
                .expect("spawn node event loop"),
        );
        SiteNode {
            site,
            addr,
            input,
            shared,
            handles,
            engine,
        }
    }

    /// This node's site id.
    pub fn site(&self) -> usize {
        self.site
    }

    /// The address the node listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The site's storage engine (in-process inspection, exactly as the
    /// other backends allow).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Stops every thread of the node and closes its connections.
    /// Idempotent; called by `Drop`.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = self.input.send(NodeInput::Shutdown);
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        let conns: Vec<TcpStream> = {
            let mut held = self.shared.conns.lock().expect("conns lock");
            std::mem::take(&mut *held).into_values().collect()
        };
        for conn in conns {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        let readers: Vec<JoinHandle<()>> = self
            .shared
            .readers
            .lock()
            .expect("readers lock")
            .drain(..)
            .collect();
        for handle in readers {
            let _ = handle.join();
        }
    }
}

impl Drop for SiteNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The per-site event loop: drain every queued input into one scheduling
/// round (exactly like the threaded backend's worker loop), ship the
/// worker's outbox, and answer the client protocol — poll replies once the
/// site is idle, `SyncAllReply` once a full fold completes, statistics
/// immediately.
fn node_loop(
    mut worker: SiteWorker,
    rx: Receiver<NodeInput>,
    mut transport: TcpTransport,
    recover_from: Option<usize>,
) {
    let mut out = Outbox::new();
    let mut poll_waiters: Vec<usize> = Vec::new();
    let mut sync_waiters: VecDeque<usize> = VecDeque::new();
    let mut full_sync_inflight = false;
    if let Some(buddy) = recover_from {
        let engine = worker.engine().clone();
        worker.crash_restart(engine, buddy, &mut out);
        for (to, msg) in out.drain(..) {
            transport.ship(to, msg);
        }
    }
    let sites = transport.peers.len();
    loop {
        let first = match rx.recv() {
            Ok(input) => input,
            Err(_) => return, // node handle dropped
        };
        let mut next = Some(first);
        while let Some(input) = next {
            match input {
                NodeInput::Msg { from, msg } if from < sites => worker.handle(from, msg, &mut out),
                NodeInput::Msg { from, msg } => match msg {
                    // General transactions never travel the wire (the
                    // cluster runtime executes counter operations), so a
                    // batch carrying one is a protocol violation, not a
                    // worker panic waiting to happen. Unknown counters and
                    // negative amounts need no check here: the worker
                    // completes those as uncommitted no-ops.
                    Message::Submit { ref ops }
                        if ops
                            .iter()
                            .any(|op| matches!(op, SiteOp::Transaction { .. })) =>
                    {
                        eprintln!(
                            "homeo-tcp site {}: client submitted a general transaction; \
                             closing its connection",
                            worker.site()
                        );
                        transport.drop_client(from);
                        poll_waiters.retain(|w| *w != from);
                        sync_waiters.retain(|w| *w != from);
                    }
                    // The worker-bound client messages: batches, seeds and
                    // state fetches. The worker addresses its replies to
                    // `from`, which the transport routes back to the client
                    // connection.
                    Message::Submit { .. } | Message::Seed { .. } | Message::StateRequest => {
                        worker.handle(from, msg, &mut out)
                    }
                    Message::PollRequest => poll_waiters.push(from),
                    Message::SyncAllRequest => sync_waiters.push_back(from),
                    Message::StatsRequest => {
                        let stats = worker.stats;
                        transport.send_client(from, &Message::StatsReply { stats });
                    }
                    other => {
                        eprintln!(
                            "homeo-tcp site {}: client sent site-protocol frame {other:?}; \
                             closing its connection",
                            worker.site()
                        );
                        transport.drop_client(from);
                        poll_waiters.retain(|w| *w != from);
                        sync_waiters.retain(|w| *w != from);
                    }
                },
                NodeInput::ClientGone(id) => {
                    poll_waiters.retain(|w| *w != id);
                    sync_waiters.retain(|w| *w != id);
                }
                NodeInput::Shutdown => return,
            }
            next = rx.try_recv().ok();
        }
        // Settle the round: ship frames, answer whoever can be answered,
        // and start a queued full fold once the previous one finished.
        loop {
            for (to, msg) in out.drain(..) {
                transport.ship(to, msg);
            }
            // While recovering, deferred submits are invisible to `idle()`,
            // so neither polls nor folds may be answered yet.
            if !worker.recovering() && worker.idle() && !poll_waiters.is_empty() {
                let mut outcomes = Some(worker.take_completed());
                for id in poll_waiters.drain(..) {
                    let reply = Message::PollReply {
                        outcomes: outcomes.take().unwrap_or_default(),
                    };
                    transport.send_client(id, &reply);
                }
            }
            if full_sync_inflight {
                if let Some(total) = worker.take_full_sync_result() {
                    full_sync_inflight = false;
                    if let Some(id) = sync_waiters.pop_front() {
                        transport.send_client(
                            id,
                            &Message::SyncAllReply {
                                solver_micros: total,
                            },
                        );
                    }
                }
            }
            if !full_sync_inflight && !sync_waiters.is_empty() && !worker.recovering() {
                worker.begin_full_sync(&mut out);
                full_sync_inflight = true;
                continue; // ship the fold requests, re-check completion
            }
            break;
        }
    }
}

/// A client attachment over one TCP connection to one site.
///
/// The connection is strictly request-response from the client's point of
/// view (submits are fire-and-forget; `poll` collects their outcomes), and
/// the stream's FIFO ordering is what orders a submit before the poll that
/// observes it. At most one client per site should poll at a time, exactly
/// as with the threaded backend's attachments.
pub struct TcpClient {
    stream: TcpStream,
    asm: FrameAssembler,
    /// Per-connection frame-encode scratch.
    scratch: Vec<u8>,
}

impl TcpClient {
    /// Connects to a site and announces as a client.
    pub fn connect(addr: SocketAddr) -> std::io::Result<TcpClient> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT))?;
        stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
        stream.write_all(
            &Message::Hello {
                peer: CLIENT_PEER,
                epoch: 0,
            }
            .encode(),
        )?;
        Ok(TcpClient {
            stream,
            asm: FrameAssembler::new(),
            scratch: Vec::new(),
        })
    }

    /// [`TcpClient::connect`] with exponential-backoff retries for up to
    /// `within` — how a load client waits out daemons that are still
    /// binding their sockets.
    pub fn connect_retry(addr: SocketAddr, within: Duration) -> std::io::Result<TcpClient> {
        let deadline = Instant::now() + within;
        let mut backoff = BACKOFF_MIN;
        loop {
            match TcpClient::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    if Instant::now() + backoff >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(BACKOFF_MAX);
                }
            }
        }
    }

    fn send(&mut self, msg: &Message) -> std::io::Result<()> {
        let frame = msg.encode_into(&mut self.scratch);
        self.stream.write_all(&frame)
    }

    fn recv(&mut self) -> std::io::Result<Message> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.asm.next_message() {
                Ok(Some(msg)) => return Ok(msg),
                Ok(None) => {}
                Err(e) => return Err(std::io::Error::new(ErrorKind::InvalidData, e)),
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "site closed the connection",
                ));
            }
            self.asm.push(&chunk[..n]);
        }
    }

    fn expect_reply<T>(
        &mut self,
        extract: impl Fn(Message) -> Result<T, Message>,
    ) -> std::io::Result<T> {
        match extract(self.recv()?) {
            Ok(value) => Ok(value),
            Err(other) => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("unexpected reply {other:?}"),
            )),
        }
    }

    /// Submits a whole batch as one `Submit` frame (fire-and-forget; pair
    /// with [`TcpClient::poll`]).
    pub fn submit_batch(&mut self, ops: &[SiteOp]) -> std::io::Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        let frame = Message::encode_submit_into(ops, &mut self.scratch);
        self.stream.write_all(&frame)
    }

    /// Blocks until every submitted operation completed and returns the
    /// outcomes in submission order.
    pub fn poll(&mut self) -> std::io::Result<Vec<OpOutcome>> {
        self.send(&Message::PollRequest)?;
        self.expect_reply(|msg| match msg {
            Message::PollReply { outcomes } => Ok(outcomes),
            other => Err(other),
        })
    }

    /// Installs a counter's initial value and treaty on the connected site
    /// and waits for the ack. Cluster-wide registration = seeding every
    /// site and collecting every ack **before** submitting operations.
    pub fn seed(&mut self, meta: CounterMeta) -> std::io::Result<()> {
        self.send(&Message::Seed { meta })?;
        self.expect_reply(|msg| match msg {
            Message::SeedAck { .. } => Ok(()),
            other => Err(other),
        })
    }

    /// Folds every registered counter cluster-wide
    /// (`SiteRuntime::synchronize` over the wire); returns the solver time.
    pub fn synchronize_all(&mut self) -> std::io::Result<u64> {
        self.send(&Message::SyncAllRequest)?;
        self.expect_reply(|msg| match msg {
            Message::SyncAllReply { solver_micros } => Ok(solver_micros),
            other => Err(other),
        })
    }

    /// The connected site's aggregate statistics.
    pub fn stats(&mut self) -> std::io::Result<ReplicatedStats> {
        self.send(&Message::StatsRequest)?;
        self.expect_reply(|msg| match msg {
            Message::StatsReply { stats } => Ok(stats),
            other => Err(other),
        })
    }

    /// The connected site's full treaty state (after a fold, the bases are
    /// the authoritative counter values — what the load client's
    /// conservation check reads).
    pub fn state(&mut self) -> std::io::Result<Vec<CounterMeta>> {
        self.send(&Message::StateRequest)?;
        self.expect_reply(|msg| match msg {
            Message::StateReply { counters } => Ok(counters),
            other => Err(other),
        })
    }
}

/// A fleet of spawned `homeostasisd` **processes** — one per site of a
/// [`ClusterSpec`] — plus the temp config file they read. Dropping the
/// fleet kills every daemon (and reaps it) and removes the config, on
/// every exit path including panics; the smoke scenario and the
/// multi-process tests both deploy through this.
pub struct DaemonFleet {
    children: Vec<std::process::Child>,
    config_path: std::path::PathBuf,
}

impl DaemonFleet {
    /// Writes `spec` to a fresh temp config and spawns `binary` (a
    /// `homeostasisd` executable) once per site with
    /// `--config <temp> --site <n>`. Daemons already spawned are killed if
    /// a later spawn fails.
    pub fn spawn(binary: &std::path::Path, spec: &ClusterSpec) -> std::io::Result<DaemonFleet> {
        let config_path = std::env::temp_dir().join(format!(
            "homeo-cluster-{}-{}.conf",
            std::process::id(),
            NEXT_EPOCH.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&config_path, spec.to_config_string())?;
        let mut fleet = DaemonFleet {
            children: Vec::with_capacity(spec.sites()),
            config_path,
        };
        for site in 0..spec.sites() {
            let child = std::process::Command::new(binary)
                .arg("--config")
                .arg(&fleet.config_path)
                .arg("--site")
                .arg(site.to_string())
                .spawn()?; // Drop of the partial fleet reaps what spawned
            fleet.children.push(child);
        }
        Ok(fleet)
    }

    /// The config file the daemons read (hand it to a load client).
    pub fn config_path(&self) -> &std::path::Path {
        &self.config_path
    }
}

impl Drop for DaemonFleet {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
        let _ = std::fs::remove_file(&self.config_path);
    }
}

/// Spawns every site of `spec` in this process (fresh engines), each on its
/// configured address. `homeostasisd --site all` and the in-process
/// fallback of the smoke scenario are this.
pub fn spawn_cluster(spec: &ClusterSpec, config: ClusterConfig) -> std::io::Result<Vec<SiteNode>> {
    (0..spec.sites())
        .map(|site| {
            SiteNode::bind(NodeOptions {
                site,
                addrs: spec.addrs.clone(),
                config: config.clone(),
                engine: Arc::new(Engine::new()),
                recover_from: None,
            })
        })
        .collect()
}

/// All sites of a cluster in one process, every frame over loopback TCP,
/// behind the [`SiteRuntime`] surface — the `cluster-tcp` execution mode.
pub struct TcpCluster {
    spec: ClusterSpec,
    config: ClusterConfig,
    engines: Vec<Arc<Engine>>,
    nodes: Vec<Option<SiteNode>>,
    clients: Vec<Option<TcpClient>>,
    registered: BTreeSet<ObjId>,
    registration_negotiations: u64,
}

impl TcpCluster {
    /// Spawns `sites` TCP site nodes on ephemeral loopback ports over fresh
    /// engines.
    pub fn new(sites: usize, config: ClusterConfig) -> Self {
        assert!(sites > 0);
        Self::from_engines((0..sites).map(|_| Engine::new()).collect(), config)
    }

    /// Spawns one TCP site node per pre-populated engine.
    pub fn from_engines(engines: Vec<Engine>, config: ClusterConfig) -> Self {
        assert!(!engines.is_empty());
        let sites = engines.len();
        // Bind every listener first so the full address list exists before
        // any node spawns — no free-port race.
        let listeners: Vec<TcpListener> = (0..sites)
            .map(|_| TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).expect("bind loopback listener"))
            .collect();
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr().expect("bound listener"))
            .collect();
        let spec = ClusterSpec {
            addrs: addrs.clone(),
            mode: config.mode,
        };
        let engines: Vec<Arc<Engine>> = engines.into_iter().map(Arc::new).collect();
        let nodes: Vec<Option<SiteNode>> = listeners
            .into_iter()
            .enumerate()
            .map(|(site, listener)| {
                Some(SiteNode::spawn(
                    listener,
                    NodeOptions {
                        site,
                        addrs: addrs.clone(),
                        config: config.clone(),
                        engine: engines[site].clone(),
                        recover_from: None,
                    },
                ))
            })
            .collect();
        let clients: Vec<Option<TcpClient>> = addrs
            .iter()
            .map(|addr| {
                Some(
                    TcpClient::connect_retry(*addr, Duration::from_secs(5))
                        .expect("connect to in-process site"),
                )
            })
            .collect();
        TcpCluster {
            spec,
            config,
            engines,
            nodes,
            clients,
            registered: BTreeSet::new(),
            registration_negotiations: 0,
        }
    }

    /// The sites' listen addresses.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.spec.addrs
    }

    fn client(&mut self, site: usize) -> &mut TcpClient {
        self.clients[site]
            .as_mut()
            .unwrap_or_else(|| panic!("site {site} is down"))
    }

    /// Registers a counter cluster-wide: negotiate the initial treaty here,
    /// then seed every site over its client connection and collect every
    /// ack (the acks order the seed before any later frame that references
    /// the counter). Returns the solver time in microseconds.
    pub fn register(&mut self, obj: ObjId, initial: i64, lower_bound: i64) -> u64 {
        if !self.registered.insert(obj.clone()) {
            return 0;
        }
        let sites = self.sites();
        let (allowances, solver_micros) = negotiate_allowances(
            self.config.mode,
            &self.config.hints(sites),
            sites,
            initial,
            lower_bound,
            self.config.timer,
        );
        self.registration_negotiations += 1;
        let meta = CounterMeta {
            obj,
            base: initial,
            lower_bound,
            allowances,
        };
        for site in 0..sites {
            self.client(site)
                .seed(meta.clone())
                .expect("seed counter over TCP");
        }
        solver_micros
    }

    /// True when the counter has been registered.
    pub fn is_registered(&self, obj: &ObjId) -> bool {
        self.registered.contains(obj)
    }

    /// Aggregate statistics across every live site (over the wire), plus
    /// the registration-path negotiations.
    pub fn stats(&self) -> ReplicatedStats {
        let mut total = ReplicatedStats {
            negotiations: self.registration_negotiations,
            ..ReplicatedStats::default()
        };
        for (site, node) in self.nodes.iter().enumerate() {
            if node.is_none() {
                continue;
            }
            let mut client =
                TcpClient::connect_retry(self.spec.addrs[site], Duration::from_secs(5))
                    .expect("stats connection");
            let stats = client.stats().expect("stats reply");
            total.local_commits += stats.local_commits;
            total.synchronizations += stats.synchronizations;
            total.negotiations += stats.negotiations;
        }
        total
    }

    /// Fail-stop kill of one site: every thread stops, every connection
    /// closes, all volatile state (treaty metadata, in-flight rounds,
    /// queued clients) is gone. Only the WAL survives, exactly like the
    /// simulator's `kill`. Call at a quiescent point (all submitted
    /// operations polled): frames in flight at the kill are lost with it.
    pub fn kill(&mut self, site: usize) {
        self.clients[site] = None;
        if let Some(mut node) = self.nodes[site].take() {
            node.shutdown();
        }
    }

    /// Restarts a killed site on its original address: the engine is
    /// reopened from the WAL frame ([`Engine::reopen_from_frame`]) and the
    /// treaty metadata refetched from the next live peer (`StateRequest`),
    /// mirroring the simulator's `restart`. Peers' sender threads
    /// reconnect with backoff on their next write.
    pub fn restart(&mut self, site: usize) {
        assert!(self.nodes[site].is_none(), "site {site} is not down");
        assert!(self.sites() > 1, "a lone site has no peer to recover from");
        let frame = self.engines[site].wal_frame();
        let engine =
            Arc::new(Engine::reopen_from_frame(&frame).expect("reopen engine from its WAL frame"));
        self.engines[site] = engine.clone();
        let buddy = (site + 1) % self.sites();
        assert!(
            self.nodes[buddy].is_some(),
            "recovery buddy {buddy} must be alive"
        );
        let node = SiteNode::bind(NodeOptions {
            site,
            addrs: self.spec.addrs.clone(),
            config: self.config.clone(),
            engine,
            recover_from: Some(buddy),
        })
        .expect("rebind the site's address");
        self.nodes[site] = Some(node);
        self.clients[site] = Some(
            TcpClient::connect_retry(self.spec.addrs[site], Duration::from_secs(5))
                .expect("reconnect to restarted site"),
        );
    }
}

impl SiteRuntime for TcpCluster {
    fn sites(&self) -> usize {
        self.engines.len()
    }

    fn engine(&self, site: usize) -> &Engine {
        &self.engines[site]
    }

    fn submit(&mut self, site: usize, op: SiteOp) {
        self.client(site)
            .submit_batch(std::slice::from_ref(&op))
            .expect("submit over TCP");
    }

    fn poll(&mut self, site: usize) -> Vec<OpOutcome> {
        self.client(site).poll().expect("poll over TCP")
    }

    /// The batched path: one `Submit` frame over the socket, one
    /// poll round trip for the outcomes.
    fn submit_batch(&mut self, site: usize, ops: &[SiteOp]) -> Vec<OpOutcome> {
        if ops.is_empty() {
            return Vec::new();
        }
        let client = self.client(site);
        client.submit_batch(ops).expect("submit batch over TCP");
        client.poll().expect("poll over TCP")
    }

    fn synchronize(&mut self, site: usize) -> u64 {
        self.client(site)
            .synchronize_all()
            .expect("synchronize over TCP")
    }

    fn ensure_registered(&mut self, obj: &ObjId, initial: i64, lower_bound: i64) {
        if !self.is_registered(obj) {
            self.register(obj.clone(), initial, lower_bound);
        }
    }
}

impl Drop for TcpCluster {
    fn drop(&mut self) {
        // Close client connections first so no reader blocks on them, then
        // stop the nodes.
        self.clients.clear();
        for node in self.nodes.iter_mut().filter_map(Option::take) {
            drop(node); // Drop runs shutdown()
        }
    }
}

/// The report of one [`tcp_load`] run, including the self-verified
/// conservation check.
#[derive(Debug, Clone)]
pub struct TcpLoadReport {
    /// Sites under load (one client thread each).
    pub sites: usize,
    /// Operations committed across all sites.
    pub committed: u64,
    /// Operations that required a synchronization round.
    pub synchronized: u64,
    /// Operations issued (`sites × ops_per_site`).
    pub issued: u64,
    /// Wall-clock duration of the load phase, in seconds.
    pub elapsed_secs: f64,
    /// Committed operations per wall-clock second.
    pub throughput: f64,
    /// Sum of every counter's base at load start — the seeded value on a
    /// fresh cluster, the drained value left by a previous load otherwise
    /// (seeding is skip-if-known).
    pub initial_total: i64,
    /// Sum of every counter's folded value after the final fold.
    pub final_total: i64,
    /// The conservation verdict: every operation committed, every site
    /// reports the same folded state, and
    /// `final_total == initial_total − committed`.
    pub conserved: bool,
}

/// Initial value each [`tcp_load`] counter is seeded with: small enough
/// that the load drains allowances and forces real synchronization rounds
/// over the sockets (once a counter's headroom is gone, every further
/// decrement serializes through its coordinator), large enough that the
/// early phase exercises the local fast path.
pub const LOAD_INITIAL: i64 = 100;

/// The `homeo-load` client: one thread per site drives seeded unit-order
/// batches over TCP (`submit_batch` + poll, 64 operations per frame), then
/// folds every counter and self-verifies conservation — the orders carry no
/// refill semantics, so the folded total must equal the seeded total minus
/// the committed decrements, and every site must report the same folded
/// state.
///
/// Connections retry with backoff for up to ten seconds, so the client can
/// start while `homeostasisd` sites are still binding their sockets.
pub fn tcp_load(
    spec: &ClusterSpec,
    ops_per_site: usize,
    items: usize,
    seed: u64,
) -> std::io::Result<TcpLoadReport> {
    assert!(spec.sites() > 0 && items > 0);
    let sites = spec.sites();
    let stock = |i: usize| ObjId::new(format!("stock[{i}]"));
    let mut clients: Vec<TcpClient> = spec
        .addrs
        .iter()
        .map(|addr| TcpClient::connect_retry(*addr, Duration::from_secs(10)))
        .collect::<std::io::Result<_>>()?;
    // Seed every counter on every site and collect every ack before any
    // operation is issued: the acks order the registration before the load.
    let hints = WorkloadHints::uniform(sites);
    for item in 0..items {
        let (allowances, _) =
            negotiate_allowances(spec.mode, &hints, sites, LOAD_INITIAL, 0, Timer::Wall);
        let meta = CounterMeta {
            obj: stock(item),
            base: LOAD_INITIAL,
            lower_bound: 0,
            allowances,
        };
        for client in &mut clients {
            client.seed(meta.clone())?;
        }
    }
    // The conservation baseline is the *acked* state, not the seed values:
    // seeding is skip-if-known, so against a cluster that already served a
    // load the counters keep their drained bases — a re-run must measure
    // conservation from those, or it would report a spurious violation.
    // Fold first so leftover deltas from an interrupted earlier run are in
    // the bases. (Single load client at a time, like every other poll
    // attachment.)
    clients[0].synchronize_all()?;
    let seeded = clients[0].state()?;
    let mut initial_total = 0i64;
    for item in 0..items {
        let obj = stock(item);
        let base = seeded
            .iter()
            .find(|meta| meta.obj == obj)
            .map(|meta| meta.base)
            .ok_or_else(|| {
                std::io::Error::new(
                    ErrorKind::InvalidData,
                    format!("site 0 does not know `{obj}` after seeding"),
                )
            })?;
        initial_total += base;
    }
    let batch = 64usize;
    let started = Instant::now();
    let results: Vec<std::io::Result<(TcpClient, u64, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(site, mut client)| {
                scope.spawn(move || {
                    let mut rng = DetRng::seed_from(seed ^ (site as u64).wrapping_mul(0x9E37));
                    let mut committed = 0u64;
                    let mut synchronized = 0u64;
                    let mut issued = 0usize;
                    let mut ops: Vec<SiteOp> = Vec::with_capacity(batch);
                    while issued < ops_per_site {
                        let n = batch.min(ops_per_site - issued);
                        ops.clear();
                        ops.extend((0..n).map(|_| SiteOp::Order {
                            obj: stock(rng.index(items)),
                            amount: 1,
                            refill_to: None,
                        }));
                        client.submit_batch(&ops)?;
                        issued += n;
                        for outcome in client.poll()? {
                            if outcome.committed {
                                committed += 1;
                            }
                            if outcome.synchronized {
                                synchronized += 1;
                            }
                        }
                    }
                    Ok((client, committed, synchronized))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load client thread panicked"))
            .collect()
    });
    let elapsed_secs = started.elapsed().as_secs_f64();
    let mut clients = Vec::with_capacity(sites);
    let mut committed = 0u64;
    let mut synchronized = 0u64;
    for result in results {
        let (client, c, s) = result?;
        clients.push(client);
        committed += c;
        synchronized += s;
    }
    // Fold everything, then read every site's folded state and verify
    // conservation: agreement across sites, and the folded total equal to
    // the seeded total minus the committed decrements.
    clients[0].synchronize_all()?;
    let reference = clients[0].state()?;
    let final_total: i64 = reference.iter().map(|meta| meta.base).sum();
    let mut consistent = reference.len() == items;
    for client in clients.iter_mut().skip(1) {
        let state = client.state()?;
        consistent &= state.len() == reference.len()
            && state
                .iter()
                .zip(&reference)
                .all(|(a, b)| a.obj == b.obj && a.base == b.base);
    }
    let issued = (sites * ops_per_site) as u64;
    let conserved =
        consistent && committed == issued && final_total == initial_total - committed as i64;
    Ok(TcpLoadReport {
        sites,
        committed,
        synchronized,
        issued,
        elapsed_secs,
        throughput: committed as f64 / elapsed_secs.max(f64::MIN_POSITIVE),
        initial_total,
        final_total,
        conserved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_protocol::ReplicatedMode;

    fn stock(i: usize) -> ObjId {
        ObjId::new(format!("stock[{i}]"))
    }

    fn cluster(sites: usize) -> TcpCluster {
        TcpCluster::new(
            sites,
            ClusterConfig::new(ReplicatedMode::EvenSplit).with_timer(Timer::fixed_zero()),
        )
    }

    #[test]
    fn the_transport_trait_routes_raw_frames_like_the_node_loop() {
        // The `Transport` impl is the raw-frame form of the node loop's
        // `ship`: self-addressed frames decode back through the input
        // channel, peer frames queue to the sender thread.
        let (input, rx) = channel::<NodeInput>();
        let (peer_tx, peer_rx) = channel::<Vec<u8>>();
        let shared = Arc::new(NodeShared {
            site: 0,
            sites: 2,
            shutdown: AtomicBool::new(false),
            next_client: AtomicUsize::new(2),
            clients: Mutex::new(BTreeMap::new()),
            next_conn: AtomicUsize::new(0),
            conns: Mutex::new(BTreeMap::new()),
            readers: Mutex::new(Vec::new()),
            peer_resets: (0..2).map(|_| AtomicBool::new(false)).collect(),
            peer_epochs: Mutex::new(vec![None; 2]),
        });
        let mut transport = TcpTransport {
            site: 0,
            input,
            peers: vec![None, Some(peer_tx)],
            shared,
            scratch: Vec::new(),
        };
        transport.send(1, 0, Message::StateRequest.encode());
        match rx.try_recv().expect("self frame delivered") {
            NodeInput::Msg { from, msg } => {
                assert_eq!(from, 1);
                assert_eq!(msg, Message::StateRequest);
            }
            _ => panic!("unexpected input"),
        }
        transport.send(0, 1, Message::StateRequest.encode());
        assert_eq!(
            peer_rx.try_recv().expect("peer frame queued"),
            Message::StateRequest.encode()
        );
    }

    #[test]
    fn orders_cross_real_sockets_and_reach_the_engines() {
        let mut cluster = cluster(2);
        cluster.register(stock(0), 101, 1);
        for i in 0..10 {
            let out = cluster.execute(
                i % 2,
                SiteOp::Order {
                    obj: stock(0),
                    amount: 1,
                    refill_to: Some(100),
                },
            );
            assert!(out.committed);
        }
        let total: i64 = (0..2)
            .map(|s| cluster.engine(s).peek(stock(0).as_str()))
            .sum();
        assert_eq!(total, 2 * 101 - 10);
        assert!(cluster.engine(0).wal_len() > 0);
        assert_eq!(cluster.stats().local_commits, 10);
    }

    #[test]
    fn violations_synchronize_over_tcp_and_match_the_serial_oracle() {
        let mut cluster = cluster(2);
        cluster.register(stock(0), 20, 1);
        let refill = 35;
        let mut rng = DetRng::seed_from(99);
        let mut serial = 20i64;
        let mut synced = 0;
        for _ in 0..200 {
            let site = rng.index(2);
            let out = cluster.execute(
                site,
                SiteOp::Order {
                    obj: stock(0),
                    amount: 1,
                    refill_to: Some(refill - 1),
                },
            );
            assert!(out.committed);
            if out.synchronized {
                synced += 1;
            }
            serial = if serial > 1 { serial - 1 } else { refill - 1 };
        }
        assert!(synced > 0, "draining 200 over 19 headroom must synchronize");
        cluster.synchronize(0);
        assert_eq!(cluster.value_at(0, &stock(0)), serial);
        assert_eq!(cluster.value_at(1, &stock(0)), serial);
    }

    #[test]
    fn batched_submits_travel_as_one_frame_and_poll_in_order() {
        let mut cluster = cluster(3);
        cluster.register(stock(0), 100, 1);
        cluster.register(stock(1), 100, 1);
        let ops: Vec<SiteOp> = [0usize, 1, 0, 1]
            .iter()
            .map(|item| SiteOp::Order {
                obj: stock(*item),
                amount: 1,
                refill_to: Some(99),
            })
            .collect();
        let outcomes = cluster.submit_batch(1, &ops);
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(|o| o.committed));
        assert!(cluster.poll(1).is_empty());
    }

    #[test]
    fn tcp_load_conserves_counters_in_process() {
        let mut nodes_cluster = cluster(2);
        let spec = ClusterSpec {
            addrs: nodes_cluster.addrs().to_vec(),
            mode: ReplicatedMode::EvenSplit,
        };
        let report = tcp_load(&spec, 400, 8, 7).expect("load run");
        assert_eq!(report.committed, 800);
        assert!(report.conserved, "conservation failed: {report:?}");
        assert!(report.synchronized > 0, "load must force sync rounds");
        // A second run against the same (drained) cluster still conserves:
        // the baseline is the acked post-seed state, not the seed values.
        let again = tcp_load(&spec, 100, 8, 8).expect("re-run");
        assert!(again.conserved, "re-run conservation failed: {again:?}");
        assert_eq!(again.initial_total, report.final_total);
        // The cluster object is still usable afterwards.
        nodes_cluster.register(stock(100), 50, 1);
        drop(nodes_cluster);
    }

    #[test]
    fn a_garbage_connection_is_dropped_without_disturbing_the_site() {
        let mut cluster = cluster(2);
        cluster.register(stock(0), 100, 1);
        // A connection that opens with an oversized length prefix is closed
        // by the reader without taking the site down.
        let mut rogue = TcpStream::connect(cluster.addrs()[0]).expect("connect");
        rogue.write_all(&[0xFF; 64]).expect("write garbage");
        let mut buf = [0u8; 8];
        // The site closes the connection: read returns EOF (or a reset).
        rogue
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        match rogue.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("site answered {n} bytes to a garbage connection"),
        }
        drop(rogue);
        // And a client that identifies correctly but then speaks the
        // site-to-site protocol is dropped by the node loop.
        let mut rogue = TcpClient::connect(cluster.addrs()[0]).expect("connect");
        rogue
            .send(&Message::DeltaReply {
                sync: 0,
                obj: stock(0),
                delta: -1_000_000,
            })
            .expect("send");
        match rogue.recv() {
            Err(_) => {}
            Ok(msg) => panic!("site answered {msg:?} to a protocol violation"),
        }
        // Well-formed but hostile submits — unknown counters, negative
        // amounts — complete as uncommitted no-ops in submission order
        // instead of panicking the site's event loop.
        let mut rogue = TcpClient::connect(cluster.addrs()[0]).expect("connect");
        rogue
            .submit_batch(&[
                SiteOp::Order {
                    obj: ObjId::new("no-such-counter"),
                    amount: 1,
                    refill_to: None,
                },
                SiteOp::Order {
                    obj: stock(0),
                    amount: -5,
                    refill_to: None,
                },
                SiteOp::Increment {
                    obj: ObjId::new("also-unknown"),
                    amount: 1,
                },
            ])
            .expect("submit hostile batch");
        let outcomes = rogue.poll().expect("site must stay up");
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(|o| !o.committed));
        // A batch carrying a general transaction is a protocol violation:
        // the client is dropped.
        rogue
            .submit_batch(&[SiteOp::Transaction { index: 0 }])
            .expect("send");
        match rogue.poll() {
            Err(_) => {}
            Ok(msg) => panic!("site answered {msg:?} to a transaction submit"),
        }
        // The site still serves real traffic.
        let out = cluster.execute(
            0,
            SiteOp::Order {
                obj: stock(0),
                amount: 1,
                refill_to: Some(99),
            },
        );
        assert!(out.committed);
        assert_eq!(cluster.value_at(0, &stock(0)), 99);
    }
}
