//! The real-socket backend: sites as TCP endpoints over `std::net`
//! loopback/LAN sockets.
//!
//! This is the first deployment path where the cluster runs as separate OS
//! processes: every frame of the protocol — client batches, treaty
//! negotiation, delta exchange, synchronization rounds, crash recovery —
//! crosses an actual socket with partial reads, kernel buffering and
//! connection loss in play. The pieces:
//!
//! * [`SiteNode`] — one running site: a **single nonblocking epoll event
//!   loop** (the reactor, `crate::reactor`) multiplexing the listener,
//!   every client connection and every peer link, pumping the same
//!   [`SiteWorker`] state machine the threaded and simulated backends run.
//!   Reads feed per-connection [`FrameAssembler`]s; writes queue whole
//!   frames and flush with vectored `writev`; client-protocol frames
//!   (`PollRequest`, `SyncAllRequest`, `StatsRequest`) are answered by the
//!   loop itself. This is what the `homeostasisd` binary runs per site.
//! * [`TcpClient`] — a client attachment over one TCP connection: seed
//!   counters, submit batches, poll outcomes, force a full fold, fetch
//!   state and statistics. Submits and polls can be **pipelined**: any
//!   number of `Submit`+`PollRequest` pairs may be in flight per
//!   connection ([`TcpClient::send_poll`] / [`TcpClient::recv_poll_reply`]);
//!   the site answers each poll as soon as the operations that preceded it
//!   on this connection have completed, in poll order.
//! * [`TcpCluster`] — the in-process form (all sites in one process, every
//!   frame still over loopback TCP) behind [`SiteRuntime`], so `drive()`,
//!   the equivalence suites and the throughput sweep get a `cluster-tcp`
//!   mode for free. It also models fail-stop crashes:
//!   [`TcpCluster::kill`] / [`TcpCluster::restart`] mirror the simulator's
//!   kill/restart (WAL-recovered engine, treaty refetch from a peer).
//! * [`tcp_load`] / [`tcp_load_opts`] — the `homeo-load` client: drives
//!   pipelined `Submit` traffic over a configurable number of concurrent
//!   connections (an epoll fan-out driver of its own, [`LoadOptions`]) and
//!   **self-verifies counter conservation** at the end (fold everything,
//!   check every site agrees and the folded total equals the seeded total
//!   minus the committed decrements).
//!
//! # Failure model
//!
//! Fail-stop, like the simulator: a connection drop is treated as a peer
//! crash/restart boundary. Frames already accepted by the kernel when a
//! peer dies are lost with the peer's RAM (its engine recovers from the
//! WAL, its treaty state from a live peer); frames still queued on the
//! sender side survive the reconnect.
//!
//! Stale-socket detection matters because TCP accepts one more write into a
//! half-closed socket before the reset comes back — a frame written there
//! vanishes silently. Two signals mark an outbound socket stale *before*
//! that write can happen: the peer's inbound connection reaching EOF (the
//! peer died — its sockets closed with it), and a fresh inbound connection
//! carrying a **new incarnation epoch** in its [`Message::Hello`] (the peer
//! restarted). A reconnect by the same incarnation keeps the same epoch, so
//! it does not cascade into mutual connection resets.
//!
//! # Backpressure
//!
//! A client that stops draining its socket used to be handled by a blanket
//! 10-second write timeout; the reactor instead bounds the **bytes** a
//! client connection may queue ([`NodeOptions::client_queue_cap`]) and
//! disconnects past the cap — memory stays bounded per connection and a
//! slow client never stalls the event loop. Peer queues are unbounded by
//! design: protocol frames must survive a reconnect (dropping them would
//! wedge an ack barrier), and peers drain each other by construction.
//!
//! # Trust model
//!
//! The *byte* layer is hardened against hostile input — bounded length
//! prefixes, decode errors close the connection, clients speaking the
//! site-to-site protocol are dropped — but peer *identity* is not
//! authenticated: a connection announcing `Hello { peer: N }` is believed.
//! Sites must only be reachable from the cluster's own network (loopback
//! here; a private segment or an authenticating proxy in any real
//! deployment), exactly like the unauthenticated intra-cluster ports of
//! most coordination systems.

use std::collections::{BTreeSet, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use epoll::{Events, Poller};
use homeo_lang::ids::ObjId;
use homeo_protocol::{
    negotiate_allowances_cached, NegotiationCache, ProgramBundle, ReplicatedStats, Roster,
    WorkloadHints,
};
use homeo_runtime::{OpOutcome, SiteOp, SiteRuntime};
use homeo_sim::{DetRng, Timer};
use homeo_store::Engine;
use homeo_telemetry::Histogram;

use crate::config::ClusterSpec;
use crate::msg::{CounterMeta, FrameAssembler, Message, CLIENT_PEER};
use crate::reactor::{
    Reactor, ReactorConfig, WriteQueue, BACKOFF_MAX, BACKOFF_MIN, LISTEN_BACKLOG,
};
use crate::worker::SiteWorker;
use crate::ClusterConfig;

/// A client request with no reply within this window is a dead site.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(30);
/// Blocking-client write timeout: a site that stops reading for this long
/// is dead (the site itself never stops reading, so this only fires on a
/// crashed or partitioned site).
const CLIENT_WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Per-process counter behind incarnation epochs: combined with the
/// process id, every [`SiteNode`] spawn gets an epoch no other incarnation
/// of the site (in this process or another) announces.
static NEXT_EPOCH: AtomicUsize = AtomicUsize::new(1);

fn fresh_epoch() -> u64 {
    ((std::process::id() as u64) << 32) ^ NEXT_EPOCH.fetch_add(1, Ordering::Relaxed) as u64
}

/// Reserves `n` distinct loopback addresses by briefly binding ephemeral
/// listeners. The self-contained smoke scenario uses this to write a config
/// for the daemons it spawns; the tiny close-to-rebind window is acceptable
/// on a CI loopback.
pub fn free_loopback_addrs(n: usize) -> std::io::Result<Vec<SocketAddr>> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind((Ipv4Addr::LOCALHOST, 0)))
        .collect::<std::io::Result<_>>()?;
    listeners.iter().map(|l| l.local_addr()).collect()
}

/// Construction parameters of a [`SiteNode`].
pub struct NodeOptions {
    /// This node's site id.
    pub site: usize,
    /// Listen address of every site, indexed by site id.
    pub addrs: Vec<SocketAddr>,
    /// Shared cluster configuration (mode, timer, hints).
    pub config: ClusterConfig,
    /// The site's storage engine.
    pub engine: Arc<Engine>,
    /// When restarting after a crash: a live peer to refetch treaty state
    /// from (`StateRequest`), after the engine was reopened from its WAL.
    pub recover_from: Option<usize>,
    /// How many unflushed reply bytes one client connection may accumulate
    /// before the site disconnects it (the reactor's backpressure bound;
    /// [`crate::DEFAULT_CLIENT_QUEUE_CAP`] unless a test narrows it).
    pub client_queue_cap: usize,
    /// `Some((contact, expected_epoch))` when this node is not a founding
    /// member: it starts with an empty treaty book and joins the live
    /// cluster through the member site `contact` (refusing the `JoinAck`
    /// if `expected_epoch` is given and the roster epoch differs).
    pub join: Option<(usize, Option<u64>)>,
}

impl NodeOptions {
    /// Options for site `site` of a cluster listening on `addrs`, carrying
    /// the shared [`ClusterConfig`] — the same builder value every other
    /// backend takes. Defaults: a fresh engine, no crash recovery, the
    /// default client backpressure bound.
    ///
    /// ```no_run
    /// use homeo_cluster::{free_loopback_addrs, NodeOptions, SiteNode};
    /// use homeo_protocol::{ClusterConfig, ReplicatedMode};
    ///
    /// let addrs = free_loopback_addrs(2).unwrap();
    /// let config = ClusterConfig::new(ReplicatedMode::EvenSplit);
    /// let node = SiteNode::bind(NodeOptions::new(0, addrs, config)).unwrap();
    /// # drop(node);
    /// ```
    pub fn new(site: usize, addrs: Vec<SocketAddr>, config: ClusterConfig) -> Self {
        NodeOptions {
            site,
            addrs,
            config,
            engine: Arc::new(Engine::new()),
            recover_from: None,
            client_queue_cap: crate::reactor::DEFAULT_CLIENT_QUEUE_CAP,
            join: None,
        }
    }

    /// Replaces the storage engine (a WAL-reopened engine on restart, or a
    /// pre-populated one).
    pub fn with_engine(mut self, engine: Arc<Engine>) -> Self {
        self.engine = engine;
        self
    }

    /// Marks this node as recovering after a crash: treaty state is
    /// refetched from the given live peer once the engine is reopened.
    pub fn with_recover_from(mut self, peer: usize) -> Self {
        self.recover_from = Some(peer);
        self
    }

    /// Overrides the reactor's per-client backpressure bound.
    pub fn with_client_queue_cap(mut self, cap: usize) -> Self {
        self.client_queue_cap = cap;
        self
    }

    /// Marks this node as a joiner: instead of founding the cluster it
    /// contacts the member site `contact` with a `JoinRequest` at startup
    /// and adopts the roster, treaty book and program bundle from the
    /// `JoinAck` handshake. With `expected_epoch` set, the join aborts if
    /// the live roster's epoch differs (a stale-config guard for
    /// operator-driven joins through `homeostasisd --config`).
    pub fn with_join(mut self, contact: usize, expected_epoch: Option<u64>) -> Self {
        self.join = Some((contact, expected_epoch));
        self
    }
}

/// One running TCP site: a single reactor thread behind one listen
/// address. `homeostasisd` runs one (or all) of these per process;
/// [`TcpCluster`] runs all of them in-process.
pub struct SiteNode {
    site: usize,
    addr: SocketAddr,
    engine: Arc<Engine>,
    shutdown: Arc<AtomicBool>,
    /// Write half of the reactor's waker pipe.
    waker: UnixStream,
    handle: Option<JoinHandle<()>>,
}

impl SiteNode {
    /// Binds `opts.addrs[opts.site]` (with a high-fanout listen backlog)
    /// and spawns the node.
    pub fn bind(opts: NodeOptions) -> std::io::Result<SiteNode> {
        let listener = epoll::listen_on(opts.addrs[opts.site], LISTEN_BACKLOG)?;
        Ok(SiteNode::spawn(listener, opts))
    }

    /// Spawns the node on an already-bound listener (how [`TcpCluster`]
    /// hands out ephemeral loopback ports race-free).
    pub fn spawn(listener: TcpListener, opts: NodeOptions) -> SiteNode {
        let NodeOptions {
            site,
            addrs,
            config,
            engine,
            recover_from,
            client_queue_cap,
            join,
        } = opts;
        let sites = addrs.len();
        assert!(site < sites, "site {site} out of range for {sites} sites");
        let addr = listener
            .local_addr()
            .expect("bound listener has an address");
        let addr_book: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
        let worker = if join.is_some() {
            // A joiner founds nothing: it starts as a lone roster and
            // learns counters, allowances and programs from the JoinAck.
            SiteWorker::new_joining(
                site,
                config.mode,
                config.hints(1).expected_amount,
                config.timer,
                engine.clone(),
            )
        } else {
            SiteWorker::new(
                site,
                sites,
                config.mode,
                config.hints(sites),
                config.timer,
                engine.clone(),
            )
        }
        .with_tuning(config.tuning)
        .with_peer_addrs(&addr_book);
        let shutdown = Arc::new(AtomicBool::new(false));
        let (waker, reactor_waker) = UnixStream::pair().expect("create waker pipe");
        let reactor = Reactor::new(
            listener,
            reactor_waker,
            shutdown.clone(),
            worker,
            ReactorConfig {
                site,
                epoch: fresh_epoch(),
                addrs,
                client_queue_cap,
                join,
            },
        )
        .expect("create the site's epoll reactor");
        let handle = std::thread::Builder::new()
            .name(format!("homeo-tcp-{site}"))
            .spawn(move || reactor.run(recover_from))
            .expect("spawn site reactor thread");
        SiteNode {
            site,
            addr,
            engine,
            shutdown,
            waker,
            handle: Some(handle),
        }
    }

    /// This node's site id.
    pub fn site(&self) -> usize {
        self.site
    }

    /// The address the node listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The site's storage engine (in-process inspection, exactly as the
    /// other backends allow).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Stops the reactor and closes every connection. Idempotent; called
    /// by `Drop`.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = (&self.waker).write(&[1]);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SiteNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A client attachment over one TCP connection to one site.
///
/// The connection is request-response by default (submits are
/// fire-and-forget; [`TcpClient::poll`] collects their outcomes), and the
/// stream's FIFO ordering is what orders a submit before the poll that
/// observes it. Polls are answered **per connection**: a poll waits for
/// the operations submitted on *this* connection before it, so any number
/// of clients may poll a site concurrently, and one client may pipeline
/// several `Submit`+poll pairs ([`TcpClient::send_poll`] /
/// [`TcpClient::recv_poll_reply`]) — replies arrive in poll order.
pub struct TcpClient {
    stream: TcpStream,
    asm: FrameAssembler,
    /// Per-connection frame-encode scratch.
    scratch: Vec<u8>,
}

impl TcpClient {
    /// Connects to a site and announces as a client.
    pub fn connect(addr: SocketAddr) -> std::io::Result<TcpClient> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT))?;
        stream.set_write_timeout(Some(CLIENT_WRITE_TIMEOUT))?;
        stream.write_all(
            &Message::Hello {
                peer: CLIENT_PEER,
                epoch: 0,
            }
            .encode(),
        )?;
        Ok(TcpClient {
            stream,
            asm: FrameAssembler::new(),
            scratch: Vec::new(),
        })
    }

    /// [`TcpClient::connect`] with exponential-backoff retries for up to
    /// `within` — how a load client waits out daemons that are still
    /// binding their sockets.
    pub fn connect_retry(addr: SocketAddr, within: Duration) -> std::io::Result<TcpClient> {
        let deadline = Instant::now() + within;
        let mut backoff = BACKOFF_MIN;
        loop {
            match TcpClient::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    if Instant::now() + backoff >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(BACKOFF_MAX);
                }
            }
        }
    }

    fn send(&mut self, msg: &Message) -> std::io::Result<()> {
        let frame = msg.encode_into(&mut self.scratch);
        self.stream.write_all(&frame)
    }

    fn recv(&mut self) -> std::io::Result<Message> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.asm.next_message() {
                Ok(Some(msg)) => return Ok(msg),
                Ok(None) => {}
                Err(e) => return Err(std::io::Error::new(ErrorKind::InvalidData, e)),
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "site closed the connection",
                ));
            }
            self.asm.push(&chunk[..n]);
        }
    }

    fn expect_reply<T>(
        &mut self,
        extract: impl Fn(Message) -> Result<T, Box<Message>>,
    ) -> std::io::Result<T> {
        match extract(self.recv()?) {
            Ok(value) => Ok(value),
            Err(other) => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("unexpected reply {other:?}"),
            )),
        }
    }

    /// Submits a whole batch as one `Submit` frame (fire-and-forget; pair
    /// with [`TcpClient::poll`], or pipeline with [`TcpClient::send_poll`]).
    pub fn submit_batch(&mut self, ops: &[SiteOp]) -> std::io::Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        let frame = Message::encode_submit_into(ops, &mut self.scratch);
        self.stream.write_all(&frame)
    }

    /// Fires a `PollRequest` without waiting for the reply — the pipelined
    /// half of [`TcpClient::poll`]. The site answers once every operation
    /// submitted on this connection *before* the poll has completed, so a
    /// window of `submit_batch` + `send_poll` pairs may be kept in flight
    /// and the replies collected with [`TcpClient::recv_poll_reply`] in
    /// the same order.
    pub fn send_poll(&mut self) -> std::io::Result<()> {
        self.send(&Message::PollRequest)
    }

    /// Receives one `PollReply` (the outcomes drained since the previous
    /// reply, in submission order). Blocks until the matching poll is
    /// answered.
    pub fn recv_poll_reply(&mut self) -> std::io::Result<Vec<OpOutcome>> {
        self.expect_reply(|msg| match msg {
            Message::PollReply { outcomes } => Ok(outcomes),
            other => Err(Box::new(other)),
        })
    }

    /// Blocks until every operation submitted on this connection completed
    /// and returns the outcomes in submission order.
    pub fn poll(&mut self) -> std::io::Result<Vec<OpOutcome>> {
        self.send_poll()?;
        self.recv_poll_reply()
    }

    /// Installs a counter's initial value and treaty on the connected site
    /// and waits for the ack. Cluster-wide registration = seeding every
    /// site and collecting every ack **before** submitting operations.
    pub fn seed(&mut self, meta: CounterMeta) -> std::io::Result<()> {
        self.send(&Message::Seed { meta })?;
        self.expect_reply(|msg| match msg {
            Message::SeedAck { .. } => Ok(()),
            other => Err(Box::new(other)),
        })
    }

    /// Registers a general-transaction program bundle on the connected site
    /// and waits for the ack, which carries the number of transactions the
    /// site accepted (0 = the bundle was rejected as malformed).
    /// Cluster-wide registration = registering on every site and collecting
    /// every ack **before** submitting [`SiteOp::Transaction`] operations.
    pub fn register_program(&mut self, bundle: &ProgramBundle) -> std::io::Result<u64> {
        self.send(&Message::RegisterProgram {
            bundle: bundle.clone(),
        })?;
        self.expect_reply(|msg| match msg {
            Message::ProgramAck { count } => Ok(count),
            other => Err(Box::new(other)),
        })
    }

    /// Folds every registered counter cluster-wide
    /// (`SiteRuntime::synchronize` over the wire); returns the solver time.
    pub fn synchronize_all(&mut self) -> std::io::Result<u64> {
        self.send(&Message::SyncAllRequest)?;
        self.expect_reply(|msg| match msg {
            Message::SyncAllReply { solver_micros } => Ok(solver_micros),
            other => Err(Box::new(other)),
        })
    }

    /// The connected site's full telemetry dump — counters, gauges and
    /// latency histograms rendered as Prometheus-style text
    /// ([`SiteWorker::metrics_text`]). This is what `homeo-load --metrics`
    /// scrapes from a live daemon.
    pub fn metrics(&mut self) -> std::io::Result<String> {
        self.send(&Message::MetricsRequest)?;
        self.expect_reply(|msg| match msg {
            Message::MetricsReply { text } => Ok(text),
            other => Err(Box::new(other)),
        })
    }

    /// The connected site's aggregate statistics.
    pub fn stats(&mut self) -> std::io::Result<ReplicatedStats> {
        self.send(&Message::StatsRequest)?;
        self.expect_reply(|msg| match msg {
            Message::StatsReply { stats } => Ok(stats),
            other => Err(Box::new(other)),
        })
    }

    /// The connected site's full treaty state (after a fold, the bases are
    /// the authoritative counter values — what the load client's
    /// conservation check reads).
    pub fn state(&mut self) -> std::io::Result<Vec<CounterMeta>> {
        self.send(&Message::StateRequest)?;
        self.expect_reply(|msg| match msg {
            Message::StateReply { counters, .. } => Ok(counters),
            other => Err(Box::new(other)),
        })
    }

    /// The connected site's current membership roster (epoch + member
    /// list). Admin tooling polls this to watch a join or leave commit.
    pub fn roster(&mut self) -> std::io::Result<Roster> {
        self.send(&Message::StateRequest)?;
        self.expect_reply(|msg| match msg {
            Message::StateReply { roster, .. } => Ok(roster),
            other => Err(Box::new(other)),
        })
    }

    /// Asks the cluster to retire `site`: the frame is forwarded to the
    /// membership coordinator, which hands the leaver's counter shards off
    /// and broadcasts the epoch-bumped roster. Fire-and-forget — poll
    /// [`TcpClient::roster`] until the epoch moves past the one observed
    /// before the request.
    pub fn leave(&mut self, site: usize) -> std::io::Result<()> {
        self.send(&Message::Leave { site: site as u64 })
    }
}

/// A fleet of spawned `homeostasisd` **processes** — one per site of a
/// [`ClusterSpec`] — plus the temp config file they read. Dropping the
/// fleet kills every daemon (and reaps it) and removes the config, on
/// every exit path including panics; the smoke scenario and the
/// multi-process tests both deploy through this.
pub struct DaemonFleet {
    children: Vec<std::process::Child>,
    config_path: std::path::PathBuf,
}

impl DaemonFleet {
    /// Writes `spec` to a fresh temp config and spawns `binary` (a
    /// `homeostasisd` executable) once per site with
    /// `--config <temp> --site <n>`. Daemons already spawned are killed if
    /// a later spawn fails.
    pub fn spawn(binary: &std::path::Path, spec: &ClusterSpec) -> std::io::Result<DaemonFleet> {
        let config_path = std::env::temp_dir().join(format!(
            "homeo-cluster-{}-{}.conf",
            std::process::id(),
            NEXT_EPOCH.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&config_path, spec.to_config_string())?;
        let mut fleet = DaemonFleet {
            children: Vec::with_capacity(spec.sites()),
            config_path,
        };
        for site in 0..spec.sites() {
            let child = std::process::Command::new(binary)
                .arg("--config")
                .arg(&fleet.config_path)
                .arg("--site")
                .arg(site.to_string())
                .spawn()?; // Drop of the partial fleet reaps what spawned
            fleet.children.push(child);
        }
        Ok(fleet)
    }

    /// The config file the daemons read (hand it to a load client).
    pub fn config_path(&self) -> &std::path::Path {
        &self.config_path
    }
}

impl Drop for DaemonFleet {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
        let _ = std::fs::remove_file(&self.config_path);
    }
}

/// Spawns every site of `spec` in this process (fresh engines), each on its
/// configured address. `homeostasisd --site all` and the in-process
/// fallback of the smoke scenario are this.
pub fn spawn_cluster(spec: &ClusterSpec, config: ClusterConfig) -> std::io::Result<Vec<SiteNode>> {
    (0..spec.sites())
        .map(|site| SiteNode::bind(NodeOptions::new(site, spec.addrs.clone(), config.clone())))
        .collect()
}

/// All sites of a cluster in one process, every frame over loopback TCP,
/// behind the [`SiteRuntime`] surface — the `cluster-tcp` execution mode.
pub struct TcpCluster {
    spec: ClusterSpec,
    config: ClusterConfig,
    engines: Vec<Arc<Engine>>,
    nodes: Vec<Option<SiteNode>>,
    clients: Vec<Option<TcpClient>>,
    registered: BTreeSet<ObjId>,
    registration_negotiations: u64,
    /// Solver time spent by the registration path, in microseconds.
    registration_solver_micros: u64,
    /// Memoized treaty templates + solver scratch for the registration
    /// path's negotiations.
    registration_cache: NegotiationCache,
    /// The registered program bundle, kept client-side: a restarted site
    /// node is a fresh [`SiteWorker`] (the program catalog is volatile in
    /// this backend), so [`TcpCluster::restart`] re-registers it and folds
    /// the general state back into lockstep.
    program_bundle: Option<ProgramBundle>,
    /// The committed membership roster as last observed by this handle
    /// (updated by [`TcpCluster::join`] / [`TcpCluster::leave`]).
    roster: Roster,
}

impl TcpCluster {
    /// Spawns `sites` TCP site nodes on ephemeral loopback ports over fresh
    /// engines.
    pub fn new(sites: usize, config: ClusterConfig) -> Self {
        assert!(sites > 0);
        Self::from_engines((0..sites).map(|_| Engine::new()).collect(), config)
    }

    /// Spawns one TCP site node per pre-populated engine.
    pub fn from_engines(engines: Vec<Engine>, config: ClusterConfig) -> Self {
        assert!(!engines.is_empty());
        let sites = engines.len();
        // Bind every listener first so the full address list exists before
        // any node spawns — no free-port race.
        let listeners: Vec<TcpListener> = (0..sites)
            .map(|_| epoll::listen_on(epoll::loopback(0), LISTEN_BACKLOG).expect("bind loopback"))
            .collect();
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr().expect("bound listener"))
            .collect();
        let spec = ClusterSpec {
            addrs: addrs.clone(),
            mode: config.mode,
            join: None,
            epoch: None,
        };
        let engines: Vec<Arc<Engine>> = engines.into_iter().map(Arc::new).collect();
        let nodes: Vec<Option<SiteNode>> = listeners
            .into_iter()
            .enumerate()
            .map(|(site, listener)| {
                Some(SiteNode::spawn(
                    listener,
                    NodeOptions::new(site, addrs.clone(), config.clone())
                        .with_engine(engines[site].clone()),
                ))
            })
            .collect();
        let clients: Vec<Option<TcpClient>> = addrs
            .iter()
            .map(|addr| {
                Some(
                    TcpClient::connect_retry(*addr, Duration::from_secs(5))
                        .expect("connect to in-process site"),
                )
            })
            .collect();
        TcpCluster {
            spec,
            config,
            engines,
            nodes,
            clients,
            registered: BTreeSet::new(),
            registration_negotiations: 0,
            registration_solver_micros: 0,
            registration_cache: NegotiationCache::new(),
            program_bundle: None,
            roster: Roster::founding(sites),
        }
    }

    /// Grows the cluster by one site on a fresh loopback port: the new node
    /// spawns with [`NodeOptions::with_join`] aimed at the roster leader,
    /// receives the treaty book and program bundle in the `JoinAck`
    /// handshake, and every registered counter is handed off to the grown
    /// member set under its ack barrier. Blocks until the epoch-bumped
    /// roster carrying the new member is committed; returns the site id.
    pub fn join(&mut self) -> usize {
        let site = self.engines.len();
        let listener = epoll::listen_on(epoll::loopback(0), LISTEN_BACKLOG).expect("bind loopback");
        let addr = listener.local_addr().expect("bound listener");
        self.spec.addrs.push(addr);
        let engine = Arc::new(Engine::new());
        self.engines.push(engine.clone());
        let contact = self.roster.leader();
        let epoch_before = self
            .client(contact)
            .roster()
            .expect("roster over TCP")
            .epoch;
        let node = SiteNode::spawn(
            listener,
            NodeOptions::new(site, self.spec.addrs.clone(), self.config.clone())
                .with_engine(engine)
                .with_join(contact, None),
        );
        self.nodes.push(Some(node));
        self.clients.push(Some(
            TcpClient::connect_retry(addr, Duration::from_secs(5))
                .expect("connect to joining site"),
        ));
        self.roster = self.await_roster(contact, |r| r.epoch > epoch_before && r.contains(site));
        site
    }

    /// Retires a member site: its counter shards are handed off to the
    /// surviving members (folding its unsynchronized deltas into the new
    /// bases) and the epoch-bumped roster evicts it. The node stays up — a
    /// retired worker completes client operations as uncommitted no-ops —
    /// but takes no further part in any treaty. Blocks until the shrunk
    /// roster is committed.
    pub fn leave(&mut self, site: usize) {
        assert!(self.roster.contains(site), "site {site} is not a member");
        assert!(self.roster.len() > 1, "cannot retire the last member");
        let epoch_before = self.roster.epoch;
        let watch = *self
            .roster
            .members
            .iter()
            .find(|&&m| m != site)
            .expect("a surviving member");
        // Any member forwards the request to the membership coordinator.
        self.client(watch).leave(site).expect("leave over TCP");
        self.roster = self.await_roster(watch, |r| r.epoch > epoch_before && !r.contains(site));
    }

    /// Polls `site`'s roster over its client connection until `done`
    /// accepts it.
    fn await_roster(&mut self, site: usize, done: impl Fn(&Roster) -> bool) -> Roster {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let roster = self.client(site).roster().expect("roster over TCP");
            if done(&roster) {
                return roster;
            }
            assert!(
                Instant::now() < deadline,
                "membership change did not commit within 30s"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// The committed roster as last observed by this handle.
    pub fn roster(&self) -> &Roster {
        &self.roster
    }

    /// The sites' listen addresses.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.spec.addrs
    }

    fn client(&mut self, site: usize) -> &mut TcpClient {
        self.clients[site]
            .as_mut()
            .unwrap_or_else(|| panic!("site {site} is down"))
    }

    /// Registers a counter cluster-wide: negotiate the initial treaty here,
    /// then seed every site over its client connection and collect every
    /// ack (the acks order the seed before any later frame that references
    /// the counter). Returns the solver time in microseconds.
    pub fn register(&mut self, obj: ObjId, initial: i64, lower_bound: i64) -> u64 {
        if !self.registered.insert(obj.clone()) {
            return 0;
        }
        let members = self.roster.members.clone();
        let (allowances, solver_micros) = negotiate_allowances_cached(
            self.config.mode,
            &self.config.hints(members.len()),
            members.len(),
            initial,
            lower_bound,
            self.config.timer,
            &mut self.registration_cache,
            None,
        );
        self.registration_negotiations += 1;
        self.registration_solver_micros += solver_micros;
        let meta = CounterMeta {
            obj,
            base: initial,
            lower_bound,
            members,
            allowances,
        };
        // Seed every spawned site, members and retired alike (non-members
        // keep the metadata for routing only), skipping killed sites (a
        // restart refetches state from its buddy anyway).
        for site in 0..self.engines.len() {
            if self.clients[site].is_some() {
                self.client(site)
                    .seed(meta.clone())
                    .expect("seed counter over TCP");
            }
        }
        solver_micros
    }

    /// True when the counter has been registered.
    pub fn is_registered(&self, obj: &ObjId) -> bool {
        self.registered.contains(obj)
    }

    /// Registers a general-transaction program bundle cluster-wide over the
    /// sockets: every site gets the source text, parses and analyzes it,
    /// negotiates its own (deterministic, identical) treaty table and acks.
    /// All acks are collected before this returns, so a later
    /// [`SiteOp::Transaction`] submit is ordered behind the registration on
    /// every connection. Returns the number of registered transactions
    /// (0 if the bundle was rejected, in which case nothing is cached).
    pub fn register_program(&mut self, bundle: &ProgramBundle) -> u64 {
        // General rounds run over the dense universe `0..n`: a roster with
        // a gap (a retired site) cannot host program registration, exactly
        // like the other backends.
        if self.roster.members != (0..self.roster.len()).collect::<Vec<_>>() {
            return 0;
        }
        let sites = self.roster.len();
        let mut count = 0;
        for site in 0..sites {
            count = self
                .client(site)
                .register_program(bundle)
                .expect("register program over TCP");
            if count == 0 {
                return 0;
            }
        }
        self.program_bundle = Some(bundle.clone());
        count
    }

    /// Aggregate statistics across every live site (over the wire), plus
    /// the registration-path negotiations.
    pub fn stats(&self) -> ReplicatedStats {
        let mut total = ReplicatedStats {
            negotiations: self.registration_negotiations,
            solver_micros_total: self.registration_solver_micros,
            ..ReplicatedStats::default()
        };
        for (site, node) in self.nodes.iter().enumerate() {
            if node.is_none() {
                continue;
            }
            let mut client =
                TcpClient::connect_retry(self.spec.addrs[site], Duration::from_secs(5))
                    .expect("stats connection");
            let stats = client.stats().expect("stats reply");
            total.local_commits += stats.local_commits;
            total.synchronizations += stats.synchronizations;
            total.negotiations += stats.negotiations;
            total.proactive_negotiations += stats.proactive_negotiations;
            total.solver_micros_total += stats.solver_micros_total;
        }
        total
    }

    /// Every live site's rendered telemetry dump (Prometheus-style text),
    /// indexed by site id — `None` for a killed site. Scraped over a fresh
    /// connection per site, exactly like [`TcpCluster::stats`].
    pub fn metrics(&self) -> Vec<Option<String>> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(site, node)| {
                node.as_ref().map(|_| {
                    let mut client =
                        TcpClient::connect_retry(self.spec.addrs[site], Duration::from_secs(5))
                            .expect("metrics connection");
                    client.metrics().expect("metrics reply")
                })
            })
            .collect()
    }

    /// Fail-stop kill of one site: the reactor stops, every connection
    /// closes, all volatile state (treaty metadata, in-flight rounds,
    /// queued clients) is gone. Only the WAL survives, exactly like the
    /// simulator's `kill`. Call at a quiescent point (all submitted
    /// operations polled): frames in flight at the kill are lost with it.
    pub fn kill(&mut self, site: usize) {
        self.clients[site] = None;
        if let Some(mut node) = self.nodes[site].take() {
            node.shutdown();
        }
    }

    /// Restarts a killed site on its original address: the engine is
    /// reopened from the WAL frame ([`Engine::reopen_from_frame`]) and the
    /// treaty metadata refetched from the next live peer (`StateRequest`),
    /// mirroring the simulator's `restart`. Peers reconnect with backoff
    /// on their next outbound frame.
    pub fn restart(&mut self, site: usize) {
        assert!(self.nodes[site].is_none(), "site {site} is not down");
        assert!(self.sites() > 1, "a lone site has no peer to recover from");
        let frame = self.engines[site].wal_frame();
        let engine =
            Arc::new(Engine::reopen_from_frame(&frame).expect("reopen engine from its WAL frame"));
        self.engines[site] = engine.clone();
        // Recover from a live *member*: a retired site's treaty metadata is
        // stale by design, so the buddy must come from the current roster.
        let buddy = self
            .roster
            .members
            .iter()
            .copied()
            .find(|&m| m != site && self.nodes[m].is_some())
            .expect("a live member to recover from");
        let node = SiteNode::bind(
            NodeOptions::new(site, self.spec.addrs.clone(), self.config.clone())
                .with_engine(engine)
                .with_recover_from(buddy),
        )
        .expect("rebind the site's address");
        self.nodes[site] = Some(node);
        self.clients[site] = Some(
            TcpClient::connect_retry(self.spec.addrs[site], Duration::from_secs(5))
                .expect("reconnect to restarted site"),
        );
        // The restarted node is a fresh worker: its program catalog is
        // gone even though its engine recovered from the WAL. Re-register
        // the cached bundle (live peers treat the identical sources as an
        // idempotent ack), then fold the general state so the newcomer's
        // treaty table rejoins the cluster's round lockstep before any
        // transaction reaches it.
        if let Some(bundle) = self.program_bundle.clone() {
            let count = self
                .client(site)
                .register_program(&bundle)
                .expect("re-register program over TCP");
            assert!(count > 0, "cached program bundle must re-register");
            self.client(site)
                .synchronize_all()
                .expect("post-restart general fold over TCP");
        }
    }
}

impl SiteRuntime for TcpCluster {
    fn sites(&self) -> usize {
        self.engines.len()
    }

    fn engine(&self, site: usize) -> &Engine {
        &self.engines[site]
    }

    fn submit(&mut self, site: usize, op: SiteOp) {
        self.client(site)
            .submit_batch(std::slice::from_ref(&op))
            .expect("submit over TCP");
    }

    fn poll(&mut self, site: usize) -> Vec<OpOutcome> {
        self.client(site).poll().expect("poll over TCP")
    }

    /// The batched path: one `Submit` frame over the socket, one
    /// poll round trip for the outcomes.
    fn submit_batch(&mut self, site: usize, ops: &[SiteOp]) -> Vec<OpOutcome> {
        if ops.is_empty() {
            return Vec::new();
        }
        let client = self.client(site);
        client.submit_batch(ops).expect("submit batch over TCP");
        client.poll().expect("poll over TCP")
    }

    fn synchronize(&mut self, site: usize) -> u64 {
        self.client(site)
            .synchronize_all()
            .expect("synchronize over TCP")
    }

    fn ensure_registered(&mut self, obj: &ObjId, initial: i64, lower_bound: i64) {
        if !self.is_registered(obj) {
            self.register(obj.clone(), initial, lower_bound);
        }
    }
}

impl Drop for TcpCluster {
    fn drop(&mut self) {
        // Close client connections first so no reader blocks on them, then
        // stop the nodes.
        self.clients.clear();
        for node in self.nodes.iter_mut().filter_map(Option::take) {
            drop(node); // Drop runs shutdown()
        }
    }
}

/// The report of one [`tcp_load`] run, including the self-verified
/// conservation check.
#[derive(Debug, Clone)]
pub struct TcpLoadReport {
    /// Sites under load.
    pub sites: usize,
    /// Concurrent client connections driven by the fan-out driver.
    pub clients: usize,
    /// Operations committed across all sites.
    pub committed: u64,
    /// Operations that required a synchronization round.
    pub synchronized: u64,
    /// Operations issued (`sites × ops_per_site`).
    pub issued: u64,
    /// Wall-clock duration of the load phase, in seconds.
    pub elapsed_secs: f64,
    /// Committed operations per wall-clock second.
    pub throughput: f64,
    /// Sum of every counter's base at load start — the seeded value on a
    /// fresh cluster, the drained value left by a previous load otherwise
    /// (seeding is skip-if-known).
    pub initial_total: i64,
    /// Sum of every counter's folded value after the final fold.
    pub final_total: i64,
    /// The conservation verdict: every operation committed, every site
    /// reports the same folded state, and
    /// `final_total == initial_total − committed`.
    pub conserved: bool,
    /// Protocol statistics aggregated over every site worker after the
    /// final fold (plus the driver's own seeding negotiations): the
    /// violation-vs-proactive negotiation split and the aggregate solver
    /// time behind the load's synchronization rounds.
    pub stats: ReplicatedStats,
    /// Offered open-loop rate in operations per second (`0.0` = the run
    /// was closed-loop).
    pub rate: f64,
    /// Client-observed request latency across every connection, in
    /// microseconds per pipelined batch: closed loop measures from the
    /// batch's send, open loop from its *scheduled* arrival (so queueing
    /// under overload is charged to the request — no coordinated
    /// omission).
    pub latency: Histogram,
    /// The same latency split per site (connection `i` drives site
    /// `i % sites`).
    pub site_latency: Vec<Histogram>,
}

/// Initial value each [`tcp_load`] counter is seeded with: small enough
/// that the load drains allowances and forces real synchronization rounds
/// over the sockets (once a counter's headroom is gone, every further
/// decrement serializes through its coordinator), large enough that the
/// early phase exercises the local fast path.
pub const LOAD_INITIAL: i64 = 100;

/// Knobs of the [`tcp_load_opts`] fan-out driver.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Operations issued per site (split across that site's connections).
    pub ops_per_site: usize,
    /// Distinct counters under load.
    pub items: usize,
    /// Workload seed (deterministic op streams per connection).
    pub seed: u64,
    /// Total concurrent connections, spread round-robin across sites.
    /// `0` means one per site (the classic `homeo-load` shape).
    pub clients: usize,
    /// Outstanding `Submit`+`PollRequest` pairs kept in flight per
    /// connection (the pipelining window).
    pub window: usize,
    /// Operations per `Submit` frame.
    pub batch: usize,
    /// Open-loop offered load in operations per second aggregate across
    /// all connections; `0.0` (the default) keeps the classic closed loop,
    /// where every connection just keeps its pipelining window full. Under
    /// open loop, batch arrivals follow a deterministic exponential
    /// (Poisson) schedule per connection — seeded from `seed`, so the same
    /// options replay the same arrival times — and latency is measured
    /// from each batch's scheduled arrival.
    pub rate: f64,
}

impl LoadOptions {
    /// The classic load shape: one connection per site, a window of
    /// [`LOAD_WINDOW`] pipelined batches of 64, closed loop.
    pub fn new(ops_per_site: usize, items: usize, seed: u64) -> LoadOptions {
        LoadOptions {
            ops_per_site,
            items,
            seed,
            clients: 0,
            window: LOAD_WINDOW,
            batch: 64,
            rate: 0.0,
        }
    }

    /// Switches the driver to open-loop arrivals at `rate` operations per
    /// second (aggregate across all connections).
    pub fn open_loop(mut self, rate: f64) -> LoadOptions {
        self.rate = rate;
        self
    }

    /// Mean seconds between batch arrivals on one of `fanout` connections
    /// under the open-loop rate; `0.0` when closed-loop.
    fn batch_gap_secs(&self, fanout: usize) -> f64 {
        if self.rate > 0.0 {
            self.batch.max(1) as f64 * fanout as f64 / self.rate
        } else {
            0.0
        }
    }
}

/// One exponential inter-arrival gap in seconds with the given mean, drawn
/// from the connection's deterministic stream.
fn exp_gap(rng: &mut DetRng, mean_secs: f64) -> f64 {
    -(1.0 - rng.unit()).ln() * mean_secs
}

/// Default pipelining window of the load driver: enough outstanding
/// batches to keep the site's socket fed while a reply is in flight,
/// small enough that outcome buffers stay tiny.
pub const LOAD_WINDOW: usize = 4;

/// Dial-wave width of the fan-out driver: how many nonblocking connects
/// are kept in flight at once (bounded well under the listen backlog so a
/// 10k-client ramp never overruns the accept queue).
const DIAL_WAVE: usize = 512;

/// The fan-out driver aborts when nothing happens for this long (a dead
/// site mid-load).
const LOAD_STALL_TIMEOUT: Duration = Duration::from_secs(30);

fn load_stock(i: usize) -> ObjId {
    ObjId::new(format!("stock[{i}]"))
}

/// One connection of the fan-out driver: a tiny nonblocking state machine
/// (dial → announce → pipelined submit/poll window → done).
struct LoadConn {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    connected: bool,
    asm: FrameAssembler,
    out: WriteQueue,
    want_write: bool,
    rng: DetRng,
    /// Operations this connection must issue.
    quota: usize,
    issued: usize,
    /// Outstanding `PollRequest`s.
    polls_out: usize,
    /// Outcomes received back.
    received: usize,
    committed: u64,
    synchronized: u64,
    done: bool,
    retry_at: Option<Instant>,
    backoff: Duration,
    /// Reference instant of each outstanding poll, in send order: the
    /// batch's send under closed loop, its scheduled arrival under open
    /// loop. Popped as the matching `PollReply` drains.
    inflight: VecDeque<Instant>,
    /// Client-observed latency of this connection's batches, micros.
    hist: Histogram,
    /// Open loop only: offset (seconds from load start) at which the next
    /// batch is scheduled to arrive.
    next_arrival: f64,
}

/// The epoll fan-out driver of [`tcp_load_opts`]: one thread multiplexes
/// every load connection, dialing in waves and keeping `window` pipelined
/// `Submit`+`PollRequest` pairs in flight per connection. Connections stay
/// open until **every** connection finished, so a `--clients 10000` run
/// really holds 10k concurrent sockets against the fleet.
struct FanoutDriver {
    poller: Poller,
    conns: Vec<LoadConn>,
    items: usize,
    window: usize,
    batch: usize,
    chunk: Vec<u8>,
    scratch: Vec<u8>,
    ops: Vec<SiteOp>,
    done_count: usize,
    dialing: usize,
    next_dial: usize,
    last_progress: Instant,
    /// Mean seconds between batch arrivals per connection; `0.0` =
    /// closed loop.
    batch_gap_secs: f64,
    /// The load's epoch: open-loop schedules are offsets from here.
    started: Instant,
}

impl FanoutDriver {
    fn new(
        conns: Vec<LoadConn>,
        opts: &LoadOptions,
        started: Instant,
    ) -> std::io::Result<FanoutDriver> {
        let batch_gap_secs = opts.batch_gap_secs(conns.len());
        Ok(FanoutDriver {
            poller: Poller::new()?,
            conns,
            items: opts.items,
            window: opts.window.max(1),
            batch: opts.batch.max(1),
            chunk: vec![0u8; 64 * 1024],
            scratch: Vec::new(),
            ops: Vec::new(),
            done_count: 0,
            dialing: 0,
            next_dial: 0,
            last_progress: Instant::now(),
            batch_gap_secs,
            started,
        })
    }

    /// Runs every connection to completion; returns the connections with
    /// their per-connection tallies and latency histograms.
    fn run(mut self) -> std::io::Result<Vec<LoadConn>> {
        let total = self.conns.len();
        let mut events = Events::with_capacity(1024);
        while self.done_count < total {
            // Keep the dial wave topped up.
            while self.dialing < DIAL_WAVE && self.next_dial < total {
                let i = self.next_dial;
                self.next_dial += 1;
                self.dial(i);
            }
            let now = Instant::now();
            for i in 0..total {
                if self.conns[i].retry_at.is_some_and(|at| at <= now) {
                    self.conns[i].retry_at = None;
                    if self.conns[i].stream.is_none() && !self.conns[i].done {
                        self.dial(i);
                    }
                }
            }
            let mut timeout = self
                .conns
                .iter()
                .filter_map(|c| c.retry_at)
                .min()
                .map(|at| at.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(100))
                .min(Duration::from_millis(100));
            if self.batch_gap_secs > 0.0 {
                // Open loop: also wake at the earliest scheduled batch
                // arrival a connection could release.
                let next_due = self
                    .conns
                    .iter()
                    .filter(|c| {
                        c.connected && !c.done && c.issued < c.quota && c.polls_out < self.window
                    })
                    .map(|c| self.started + Duration::from_secs_f64(c.next_arrival))
                    .min();
                if let Some(due) = next_due {
                    timeout = timeout.min(due.saturating_duration_since(Instant::now()));
                }
            }
            self.poller.wait(&mut events, Some(timeout))?;
            if events.is_empty() && self.last_progress.elapsed() > LOAD_STALL_TIMEOUT {
                return Err(std::io::Error::new(
                    ErrorKind::TimedOut,
                    "load stalled: no site activity for 30s",
                ));
            }
            for event in events.iter() {
                let i = event.token as usize;
                if event.writable {
                    self.on_writable(i)?;
                }
                if event.readable {
                    self.on_readable(i)?;
                }
            }
            if self.batch_gap_secs > 0.0 {
                // Open loop: release every batch whose scheduled arrival
                // has passed, independent of socket events.
                for i in 0..total {
                    if self.conns[i].connected && !self.conns[i].done {
                        let before = self.conns[i].polls_out;
                        self.fill_window(i);
                        if self.conns[i].polls_out > before {
                            self.last_progress = Instant::now();
                            self.flush(i)?;
                        }
                    }
                }
            }
        }
        Ok(self.conns)
    }

    fn dial(&mut self, i: usize) {
        debug_assert!(self.conns[i].stream.is_none());
        match epoll::connect_nonblocking(self.conns[i].addr) {
            Ok(stream) => {
                if self.poller.add(&stream, i as u64, false, true).is_ok() {
                    self.conns[i].stream = Some(stream);
                    self.conns[i].want_write = true;
                    self.dialing += 1;
                    return;
                }
                self.schedule_redial(i);
            }
            Err(_) => self.schedule_redial(i),
        }
    }

    fn schedule_redial(&mut self, i: usize) {
        let conn = &mut self.conns[i];
        conn.retry_at = Some(Instant::now() + conn.backoff);
        conn.backoff = (conn.backoff * 2).min(BACKOFF_MAX);
    }

    fn on_writable(&mut self, i: usize) -> std::io::Result<()> {
        if self.conns[i].stream.is_none() {
            return Ok(());
        }
        if !self.conns[i].connected {
            let healthy = {
                let stream = self.conns[i].stream.as_ref().expect("checked");
                matches!(stream.take_error(), Ok(None))
            };
            self.dialing -= 1;
            if !healthy {
                // The connect failed (e.g. a site still binding): back off
                // and redial. Re-dial slots count against the wave again.
                let stream = self.conns[i].stream.take().expect("checked");
                let _ = self.poller.remove(&stream);
                self.schedule_redial(i);
                return Ok(());
            }
            self.last_progress = Instant::now();
            let conn = &mut self.conns[i];
            conn.connected = true;
            conn.backoff = BACKOFF_MIN;
            let _ = conn.stream.as_ref().expect("checked").set_nodelay(true);
            let hello = Message::Hello {
                peer: CLIENT_PEER,
                epoch: 0,
            }
            .encode_into(&mut self.scratch);
            conn.out.push(hello);
            self.fill_window(i);
            if self.conns[i].quota == 0 {
                // Nothing to issue: this connection only contributes to the
                // concurrent-connection count. It stays open (and
                // registered for EOF detection) until the whole load
                // finishes.
                self.conns[i].done = true;
                self.done_count += 1;
            }
            self.flush(i)?;
            return Ok(());
        }
        self.flush(i)
    }

    fn on_readable(&mut self, i: usize) -> std::io::Result<()> {
        if self.conns[i].stream.is_none() || !self.conns[i].connected {
            return Ok(());
        }
        loop {
            let read = {
                let conn = &mut self.conns[i];
                conn.stream.as_mut().expect("checked").read(&mut self.chunk)
            };
            match read {
                Ok(0) => {
                    if self.conns[i].done {
                        // The site dropped an idle finished connection
                        // (e.g. it was restarted after our quota drained).
                        let stream = self.conns[i].stream.take().expect("checked");
                        let _ = self.poller.remove(&stream);
                        return Ok(());
                    }
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "site closed a load connection mid-run",
                    ));
                }
                Ok(n) => {
                    self.last_progress = Instant::now();
                    let short = n < self.chunk.len();
                    self.conns[i].asm.push(&self.chunk[..n]);
                    self.drain_replies(i)?;
                    if short {
                        return Ok(());
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn drain_replies(&mut self, i: usize) -> std::io::Result<()> {
        loop {
            let next = self.conns[i]
                .asm
                .next_message()
                .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e))?;
            let Some(msg) = next else { return Ok(()) };
            let Message::PollReply { outcomes } = msg else {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidData,
                    format!("unexpected frame on a load connection: {msg:?}"),
                ));
            };
            let conn = &mut self.conns[i];
            conn.polls_out -= 1;
            if let Some(at) = conn.inflight.pop_front() {
                conn.hist.record(at.elapsed().as_micros() as u64);
            }
            conn.received += outcomes.len();
            for outcome in &outcomes {
                if outcome.committed {
                    conn.committed += 1;
                }
                if outcome.synchronized {
                    conn.synchronized += 1;
                }
            }
            self.fill_window(i);
            self.flush(i)?;
            let conn = &self.conns[i];
            if !conn.done && conn.issued == conn.quota && conn.polls_out == 0 {
                debug_assert_eq!(conn.received, conn.quota, "pipelined outcomes must balance");
                self.conns[i].done = true;
                self.done_count += 1;
            }
        }
    }

    /// Tops the pipelining window up: pairs of one `Submit` batch and one
    /// `PollRequest`, until `window` polls are outstanding or the quota is
    /// issued.
    fn fill_window(&mut self, i: usize) {
        let items = self.items;
        let batch = self.batch;
        loop {
            let conn = &mut self.conns[i];
            if conn.issued >= conn.quota || conn.polls_out >= self.window {
                return;
            }
            // Open-loop pacing: a batch is released only once its
            // scheduled arrival has passed, and its latency reference is
            // that schedule (not the actual send), so time spent waiting
            // for a window slot under overload is charged to the request.
            let reference = if self.batch_gap_secs > 0.0 {
                let due = self.started + Duration::from_secs_f64(conn.next_arrival);
                if Instant::now() < due {
                    return;
                }
                conn.next_arrival += exp_gap(&mut conn.rng, self.batch_gap_secs);
                due
            } else {
                Instant::now()
            };
            let n = batch.min(conn.quota - conn.issued);
            self.ops.clear();
            self.ops.extend((0..n).map(|_| SiteOp::Order {
                obj: load_stock(conn.rng.index(items)),
                amount: 1,
                refill_to: None,
            }));
            let submit = Message::encode_submit_into(&self.ops, &mut self.scratch);
            let conn = &mut self.conns[i];
            conn.out.push(submit);
            let poll = Message::PollRequest.encode_into(&mut self.scratch);
            let conn = &mut self.conns[i];
            conn.out.push(poll);
            conn.issued += n;
            conn.polls_out += 1;
            conn.inflight.push_back(reference);
        }
    }

    /// Flushes a connection's queue and keeps its write interest in sync.
    fn flush(&mut self, i: usize) -> std::io::Result<()> {
        let conn = &mut self.conns[i];
        let Some(stream) = conn.stream.as_mut() else {
            return Ok(());
        };
        let drained = conn.out.flush(stream)?;
        let want = !drained;
        if want != conn.want_write {
            conn.want_write = want;
            let _ = self.poller.modify(stream, i as u64, true, want);
        } else if drained && conn.out.is_empty() && conn.want_write {
            // Unreachable by construction; keep interest consistent anyway.
            conn.want_write = false;
            let _ = self.poller.modify(stream, i as u64, true, false);
        }
        Ok(())
    }
}

/// [`tcp_load_opts`] with the classic shape: one connection per site,
/// batches of 64, a window of [`LOAD_WINDOW`].
pub fn tcp_load(
    spec: &ClusterSpec,
    ops_per_site: usize,
    items: usize,
    seed: u64,
) -> std::io::Result<TcpLoadReport> {
    tcp_load_opts(spec, &LoadOptions::new(ops_per_site, items, seed))
}

/// The `homeo-load` client: seeds every counter on every site, then drives
/// pipelined unit-order batches over `opts.clients` concurrent connections
/// (round-robin across sites, window of `opts.window` outstanding
/// `Submit`+poll pairs each), then folds every counter and self-verifies
/// conservation — the orders carry no refill semantics, so the folded
/// total must equal the seeded total minus the committed decrements, and
/// every site must report the same folded state.
///
/// Connections retry with backoff for up to ten seconds, so the client can
/// start while `homeostasisd` sites are still binding their sockets.
pub fn tcp_load_opts(spec: &ClusterSpec, opts: &LoadOptions) -> std::io::Result<TcpLoadReport> {
    assert!(spec.sites() > 0 && opts.items > 0);
    let sites = spec.sites();
    let items = opts.items;
    let fanout = if opts.clients == 0 {
        sites
    } else {
        opts.clients.max(sites)
    };
    // High fan-out needs file descriptors; best-effort raise, the dial
    // loop surfaces a hard failure anyway.
    let _ = epoll::raise_nofile_limit();
    let mut clients: Vec<TcpClient> = spec
        .addrs
        .iter()
        .map(|addr| TcpClient::connect_retry(*addr, Duration::from_secs(10)))
        .collect::<std::io::Result<_>>()?;
    // Seed every counter on every site and collect every ack before any
    // operation is issued: the acks order the registration before the load.
    let hints = WorkloadHints::uniform(sites);
    let mut seed_cache = NegotiationCache::new();
    let mut stats = ReplicatedStats::default();
    for item in 0..items {
        let (allowances, solver_micros) = negotiate_allowances_cached(
            spec.mode,
            &hints,
            sites,
            LOAD_INITIAL,
            0,
            Timer::Wall,
            &mut seed_cache,
            None,
        );
        stats.negotiations += 1;
        stats.solver_micros_total += solver_micros;
        let meta = CounterMeta {
            obj: load_stock(item),
            base: LOAD_INITIAL,
            lower_bound: 0,
            members: (0..sites).collect(),
            allowances,
        };
        for client in &mut clients {
            client.seed(meta.clone())?;
        }
    }
    // The conservation baseline is the *acked* state, not the seed values:
    // seeding is skip-if-known, so against a cluster that already served a
    // load the counters keep their drained bases — a re-run must measure
    // conservation from those, or it would report a spurious violation.
    // Fold first so leftover deltas from an interrupted earlier run are in
    // the bases.
    clients[0].synchronize_all()?;
    let seeded = clients[0].state()?;
    let mut initial_total = 0i64;
    for item in 0..items {
        let obj = load_stock(item);
        let base = seeded
            .iter()
            .find(|meta| meta.obj == obj)
            .map(|meta| meta.base)
            .ok_or_else(|| {
                std::io::Error::new(
                    ErrorKind::InvalidData,
                    format!("site 0 does not know `{obj}` after seeding"),
                )
            })?;
        initial_total += base;
    }
    // Split each site's quota over its connections (connection `i` targets
    // site `i % sites`).
    let mut per_site = vec![0usize; sites];
    for i in 0..fanout {
        per_site[i % sites] += 1;
    }
    let mut seen = vec![0usize; sites];
    let batch_gap_secs = opts.batch_gap_secs(fanout);
    let conns: Vec<LoadConn> = (0..fanout)
        .map(|i| {
            let site = i % sites;
            let pos = seen[site];
            seen[site] += 1;
            let share = opts.ops_per_site / per_site[site]
                + usize::from(pos < opts.ops_per_site % per_site[site]);
            let mut rng = DetRng::seed_from(opts.seed ^ (i as u64).wrapping_mul(0x9E37));
            // Under open loop every connection's first arrival is already
            // exponential, so the fleet does not fire in lockstep at t=0.
            let next_arrival = if batch_gap_secs > 0.0 {
                exp_gap(&mut rng, batch_gap_secs)
            } else {
                0.0
            };
            LoadConn {
                addr: spec.addrs[site],
                stream: None,
                connected: false,
                asm: FrameAssembler::new(),
                out: WriteQueue::new(),
                want_write: false,
                rng,
                quota: share,
                issued: 0,
                polls_out: 0,
                received: 0,
                committed: 0,
                synchronized: 0,
                done: false,
                retry_at: None,
                backoff: BACKOFF_MIN,
                inflight: VecDeque::new(),
                hist: Histogram::new(),
                next_arrival,
            }
        })
        .collect();
    let started = Instant::now();
    let conns = FanoutDriver::new(conns, opts, started)?.run()?;
    let elapsed_secs = started.elapsed().as_secs_f64();
    let (committed, synchronized) = conns.iter().fold((0, 0), |(c, s), conn| {
        (c + conn.committed, s + conn.synchronized)
    });
    let mut latency = Histogram::new();
    let mut site_latency = vec![Histogram::new(); sites];
    for (i, conn) in conns.iter().enumerate() {
        latency.merge(&conn.hist);
        site_latency[i % sites].merge(&conn.hist);
    }
    // Fold everything, then read every site's folded state and verify
    // conservation: agreement across sites, and the folded total equal to
    // the seeded total minus the committed decrements.
    clients[0].synchronize_all()?;
    let reference = clients[0].state()?;
    let final_total: i64 = reference.iter().map(|meta| meta.base).sum();
    let mut consistent = reference.len() == items;
    for client in clients.iter_mut().skip(1) {
        let state = client.state()?;
        consistent &= state.len() == reference.len()
            && state
                .iter()
                .zip(&reference)
                .all(|(a, b)| a.obj == b.obj && a.base == b.base);
    }
    let issued = (sites * opts.ops_per_site) as u64;
    let conserved =
        consistent && committed == issued && final_total == initial_total - committed as i64;
    // Collect the per-site protocol statistics for the load summary: the
    // negotiation split (violation-triggered vs proactive) and the
    // aggregate solver time behind the synchronization rounds just driven.
    for client in clients.iter_mut() {
        let site_stats = client.stats()?;
        stats.local_commits += site_stats.local_commits;
        stats.synchronizations += site_stats.synchronizations;
        stats.negotiations += site_stats.negotiations;
        stats.proactive_negotiations += site_stats.proactive_negotiations;
        stats.solver_micros_total += site_stats.solver_micros_total;
    }
    Ok(TcpLoadReport {
        sites,
        clients: fanout,
        committed,
        synchronized,
        issued,
        elapsed_secs,
        throughput: committed as f64 / elapsed_secs.max(f64::MIN_POSITIVE),
        initial_total,
        final_total,
        conserved,
        stats,
        rate: opts.rate,
        latency,
        site_latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_protocol::ReplicatedMode;

    fn stock(i: usize) -> ObjId {
        ObjId::new(format!("stock[{i}]"))
    }

    fn cluster(sites: usize) -> TcpCluster {
        TcpCluster::new(
            sites,
            ClusterConfig::new(ReplicatedMode::EvenSplit).with_timer(Timer::fixed_zero()),
        )
    }

    #[test]
    fn orders_cross_real_sockets_and_reach_the_engines() {
        let mut cluster = cluster(2);
        cluster.register(stock(0), 101, 1);
        for i in 0..10 {
            let out = cluster.execute(
                i % 2,
                SiteOp::Order {
                    obj: stock(0),
                    amount: 1,
                    refill_to: Some(100),
                },
            );
            assert!(out.committed);
        }
        let total: i64 = (0..2)
            .map(|s| cluster.engine(s).peek(stock(0).as_str()))
            .sum();
        assert_eq!(total, 2 * 101 - 10);
        assert!(cluster.engine(0).wal_len() > 0);
        assert_eq!(cluster.stats().local_commits, 10);
    }

    #[test]
    fn violations_synchronize_over_tcp_and_match_the_serial_oracle() {
        let mut cluster = cluster(2);
        cluster.register(stock(0), 20, 1);
        let refill = 35;
        let mut rng = DetRng::seed_from(99);
        let mut serial = 20i64;
        let mut synced = 0;
        for _ in 0..200 {
            let site = rng.index(2);
            let out = cluster.execute(
                site,
                SiteOp::Order {
                    obj: stock(0),
                    amount: 1,
                    refill_to: Some(refill - 1),
                },
            );
            assert!(out.committed);
            if out.synchronized {
                synced += 1;
            }
            serial = if serial > 1 { serial - 1 } else { refill - 1 };
        }
        assert!(synced > 0, "draining 200 over 19 headroom must synchronize");
        cluster.synchronize(0);
        assert_eq!(cluster.value_at(0, &stock(0)), serial);
        assert_eq!(cluster.value_at(1, &stock(0)), serial);
    }

    #[test]
    fn a_joined_site_serves_orders_over_real_sockets() {
        // Grow 2 → 3 mid-flight: the joiner dials the leader, adopts the
        // treaty book from the JoinAck, and every registered counter is
        // handed off to the three-member set — after which the new site
        // commits orders like a founder.
        let mut cluster = cluster(2);
        cluster.register(stock(0), 60, 0);
        let site = cluster.join();
        assert_eq!(site, 2);
        assert_eq!(cluster.roster().members, vec![0, 1, 2]);
        for i in 0..12 {
            let out = cluster.execute(
                i % 3,
                SiteOp::Order {
                    obj: stock(0),
                    amount: 1,
                    refill_to: None,
                },
            );
            assert!(out.committed, "order {i} must commit");
        }
        cluster.synchronize(2);
        for member in [0usize, 1, 2] {
            assert_eq!(cluster.value_at(member, &stock(0)), 48);
        }
    }

    #[test]
    fn a_retired_site_folds_out_over_real_sockets() {
        // Shrink 3 → 2: the leaver's unsynchronized deltas fold into the
        // handoff base (nothing is lost), the survivors re-split the
        // allowance, and the retired node keeps serving its socket —
        // completing orders as uncommitted no-ops.
        let mut cluster = cluster(3);
        cluster.register(stock(0), 90, 0);
        for site in 0..3 {
            let out = cluster.execute(
                site,
                SiteOp::Order {
                    obj: stock(0),
                    amount: 2,
                    refill_to: None,
                },
            );
            assert!(out.committed);
        }
        cluster.leave(1);
        assert_eq!(cluster.roster().members, vec![0, 2]);
        let out = cluster.execute(
            0,
            SiteOp::Order {
                obj: stock(0),
                amount: 1,
                refill_to: None,
            },
        );
        assert!(out.committed, "survivors keep committing after the leave");
        let noop = cluster.execute(
            1,
            SiteOp::Order {
                obj: stock(0),
                amount: 1,
                refill_to: None,
            },
        );
        assert!(!noop.committed, "a retired site must not commit orders");
        cluster.synchronize(0);
        for member in [0usize, 2] {
            assert_eq!(cluster.value_at(member, &stock(0)), 90 - 6 - 1);
        }
    }

    #[test]
    fn batched_submits_travel_as_one_frame_and_poll_in_order() {
        let mut cluster = cluster(3);
        cluster.register(stock(0), 100, 1);
        cluster.register(stock(1), 100, 1);
        let ops: Vec<SiteOp> = [0usize, 1, 0, 1]
            .iter()
            .map(|item| SiteOp::Order {
                obj: stock(*item),
                amount: 1,
                refill_to: Some(99),
            })
            .collect();
        let outcomes = cluster.submit_batch(1, &ops);
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(|o| o.committed));
        assert!(cluster.poll(1).is_empty());
    }

    #[test]
    fn pipelined_polls_correlate_per_connection() {
        // A window of Submit+PollRequest pairs in flight on one
        // connection: each reply drains exactly the outcomes of the batch
        // that preceded its poll, in order. A second connection polling
        // concurrently gets only its own outcomes (per-connection
        // watermarks, not the old global first-poller-takes-all).
        let mut cluster = cluster(2);
        cluster.register(stock(0), 10_000, 1);
        let addr = cluster.addrs()[0];
        let mut a = TcpClient::connect(addr).expect("connect a");
        let mut b = TcpClient::connect(addr).expect("connect b");
        let order = |n: usize| -> Vec<SiteOp> {
            (0..n)
                .map(|_| SiteOp::Order {
                    obj: stock(0),
                    amount: 1,
                    refill_to: None,
                })
                .collect()
        };
        // Three pipelined pairs on `a`, sizes 2, 3, 4 — no reads between.
        for n in [2usize, 3, 4] {
            a.submit_batch(&order(n)).expect("submit");
            a.send_poll().expect("poll");
        }
        // `b` interleaves its own traffic while `a`'s window is in flight.
        b.submit_batch(&order(5)).expect("submit");
        let b_out = b.poll().expect("b poll");
        assert_eq!(b_out.len(), 5);
        for expect in [2usize, 3, 4] {
            let out = a.recv_poll_reply().expect("reply");
            assert_eq!(out.len(), expect);
            assert!(out.iter().all(|o| o.committed));
        }
    }

    #[test]
    fn tcp_load_conserves_counters_in_process() {
        let mut nodes_cluster = cluster(2);
        let spec = ClusterSpec {
            addrs: nodes_cluster.addrs().to_vec(),
            mode: ReplicatedMode::EvenSplit,
            join: None,
            epoch: None,
        };
        let report = tcp_load(&spec, 400, 8, 7).expect("load run");
        assert_eq!(report.committed, 800);
        assert!(report.conserved, "conservation failed: {report:?}");
        assert!(report.synchronized > 0, "load must force sync rounds");
        // A second run against the same (drained) cluster still conserves:
        // the baseline is the acked post-seed state, not the seed values.
        let again = tcp_load(&spec, 100, 8, 8).expect("re-run");
        assert!(again.conserved, "re-run conservation failed: {again:?}");
        assert_eq!(again.initial_total, report.final_total);
        // The cluster object is still usable afterwards.
        nodes_cluster.register(stock(100), 50, 1);
        drop(nodes_cluster);
    }

    #[test]
    fn a_fanout_load_conserves_with_many_clients_per_site() {
        // The high-fanout path: 24 concurrent connections over 2 sites,
        // deep pipeline, small batches — uneven quota splits included
        // (400 ops over 12 connections per site).
        let nodes_cluster = cluster(2);
        let spec = ClusterSpec {
            addrs: nodes_cluster.addrs().to_vec(),
            mode: ReplicatedMode::EvenSplit,
            join: None,
            epoch: None,
        };
        let report = tcp_load_opts(
            &spec,
            &LoadOptions {
                clients: 24,
                window: 8,
                batch: 16,
                ..LoadOptions::new(400, 8, 21)
            },
        )
        .expect("fanout load");
        assert_eq!(report.clients, 24);
        assert_eq!(report.committed, 800);
        assert!(report.conserved, "conservation failed: {report:?}");
        drop(nodes_cluster);
    }

    #[test]
    fn an_open_loop_load_paces_arrivals_and_records_latency() {
        let nodes_cluster = cluster(2);
        let spec = ClusterSpec {
            addrs: nodes_cluster.addrs().to_vec(),
            mode: ReplicatedMode::EvenSplit,
            join: None,
            epoch: None,
        };
        // 600 ops offered at 20k ops/s: ~30ms of paced Poisson arrivals.
        let report = tcp_load_opts(&spec, &LoadOptions::new(300, 8, 5).open_loop(20_000.0))
            .expect("open-loop load");
        assert_eq!(report.committed, 600);
        assert!(report.conserved, "conservation failed: {report:?}");
        assert_eq!(report.rate, 20_000.0);
        assert!(
            report.latency.count() > 0,
            "open-loop batches must record latency"
        );
        assert!(report.latency.quantile(0.99) >= report.latency.quantile(0.50));
        let per_site: u64 = report.site_latency.iter().map(|h| h.count()).sum();
        assert_eq!(per_site, report.latency.count());
        // The sites served the load, so a metrics scrape must show the
        // reactor and worker instrumentation alive and non-zero.
        for text in nodes_cluster.metrics() {
            let text = text.expect("every site is up");
            assert!(text.contains("homeo_reactor_frames_in_total"));
            assert!(text.contains("homeo_submit_batch_ops_count"));
            assert!(text.contains("homeo_local_commits_total"));
        }
        drop(nodes_cluster);
    }

    #[test]
    fn a_garbage_connection_is_dropped_without_disturbing_the_site() {
        let mut cluster = cluster(2);
        cluster.register(stock(0), 100, 1);
        // A connection that opens with an oversized length prefix is closed
        // by the reactor without taking the site down.
        let mut rogue = TcpStream::connect(cluster.addrs()[0]).expect("connect");
        rogue.write_all(&[0xFF; 64]).expect("write garbage");
        let mut buf = [0u8; 8];
        // The site closes the connection: read returns EOF (or a reset).
        rogue
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        match rogue.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("site answered {n} bytes to a garbage connection"),
        }
        drop(rogue);
        // And a client that identifies correctly but then speaks the
        // site-to-site protocol is dropped by the reactor.
        let mut rogue = TcpClient::connect(cluster.addrs()[0]).expect("connect");
        rogue
            .send(&Message::DeltaReply {
                sync: 0,
                obj: stock(0),
                delta: -1_000_000,
            })
            .expect("send");
        match rogue.recv() {
            Err(_) => {}
            Ok(msg) => panic!("site answered {msg:?} to a protocol violation"),
        }
        // Well-formed but hostile submits — unknown counters, negative
        // amounts — complete as uncommitted no-ops in submission order
        // instead of panicking the site's event loop.
        let mut rogue = TcpClient::connect(cluster.addrs()[0]).expect("connect");
        rogue
            .submit_batch(&[
                SiteOp::Order {
                    obj: ObjId::new("no-such-counter"),
                    amount: 1,
                    refill_to: None,
                },
                SiteOp::Order {
                    obj: stock(0),
                    amount: -5,
                    refill_to: None,
                },
                SiteOp::Increment {
                    obj: ObjId::new("also-unknown"),
                    amount: 1,
                },
            ])
            .expect("submit hostile batch");
        let outcomes = rogue.poll().expect("site must stay up");
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(|o| !o.committed));
        // A batch carrying a general transaction against a site with no
        // registered programs completes as a typed unsupported outcome —
        // the confused client is told, not disconnected.
        rogue
            .submit_batch(&[SiteOp::Transaction { index: 0 }])
            .expect("send");
        let outcomes = rogue.poll().expect("site must stay up");
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].unsupported && !outcomes[0].committed);
        // The site still serves real traffic.
        let out = cluster.execute(
            0,
            SiteOp::Order {
                obj: stock(0),
                amount: 1,
                refill_to: Some(99),
            },
        );
        assert!(out.committed);
        assert_eq!(cluster.value_at(0, &stock(0)), 99);
    }

    #[test]
    fn a_client_that_stops_draining_is_disconnected_at_the_byte_cap() {
        // The reactor's backpressure bound: a client that keeps asking for
        // replies but never reads its socket is cut off once its write
        // queue exceeds `client_queue_cap` bytes — instead of the old
        // 10-second write-timeout stall.
        let addrs = free_loopback_addrs(1).expect("addr");
        let mut node = SiteNode::bind(NodeOptions {
            site: 0,
            addrs: addrs.clone(),
            config: ClusterConfig::new(ReplicatedMode::EvenSplit).with_timer(Timer::fixed_zero()),
            engine: Arc::new(Engine::new()),
            recover_from: None,
            client_queue_cap: 64 * 1024,
            join: None,
        })
        .expect("bind");
        let mut hog = TcpClient::connect_retry(addrs[0], Duration::from_secs(5)).expect("connect");
        // Big uncommitted batches + polls, never reading: replies pile up
        // in the kernel buffers first, then in the site's write queue.
        let ops: Vec<SiteOp> = (0..512)
            .map(|_| SiteOp::Increment {
                obj: ObjId::new("unknown"),
                amount: 1,
            })
            .collect();
        let mut disconnected = false;
        for _ in 0..4_000 {
            if hog.submit_batch(&ops).is_err() || hog.send_poll().is_err() {
                disconnected = true;
                break;
            }
        }
        if !disconnected {
            // The submits all got in before the reset surfaced; the next
            // read must observe the disconnect rather than a reply burst
            // that a draining client would see.
            hog.stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .expect("timeout");
            let mut sink = [0u8; 64 * 1024];
            let mut drained = 0usize;
            loop {
                match hog.stream.read(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => drained += n,
                }
            }
            // Everything buffered before the cut arrives, but the stream
            // must end (EOF/reset) instead of serving all replies.
            assert!(
                drained < 4_000 * 512 * 8,
                "site never disconnected the non-draining client"
            );
        }
        // The site survived and still serves a well-behaved client.
        let mut ok = TcpClient::connect_retry(addrs[0], Duration::from_secs(5)).expect("connect");
        ok.submit_batch(&[SiteOp::Increment {
            obj: ObjId::new("unknown"),
            amount: 1,
        }])
        .expect("submit");
        assert_eq!(ok.poll().expect("poll").len(), 1);
        node.shutdown();
    }
}
