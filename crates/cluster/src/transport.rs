//! The transport seam: how encoded [`Message`](crate::Message) frames move
//! between sites.
//!
//! Workers never hold references to each other — the only way state leaves a
//! site is `transport.send(from, to, frame)`. Two implementations cover the
//! two execution backends:
//!
//! * [`ChannelTransport`] — `std::sync::mpsc` senders into real worker
//!   threads ([`ThreadedCluster`](crate::ThreadedCluster)); per-pair FIFO,
//!   no faults, hardware-speed.
//! * `SimTransport` (module [`crate::sim`]) — a deterministic fault
//!   injector over a virtual clock: per-pair delay from an
//!   [`homeo_sim::RttMatrix`], seeded jitter/reordering, drops surfaced as
//!   retransmission delay, symmetric partitions and site kill/restart.

use std::sync::mpsc::Sender;
use std::sync::{Arc, RwLock};

/// Sender id used for frames originating from the client attachment (the
/// coordinating thread or a load-generator client) rather than a peer site.
/// Client frames are exempt from fault injection: the client "connection" is
/// local to the site, only site-to-site traffic crosses the network.
pub const CLIENT: usize = usize::MAX;

/// Moves one encoded [`Message`](crate::Message) frame from `from` to `to`.
///
/// Implementations must preserve causal order per sender pair for live,
/// connected sites (the sync protocol's ack barriers make that sufficient
/// for correctness); they may delay, reorder across pairs, or hold frames
/// for partitioned or dead destinations.
pub trait Transport {
    /// Ships `frame` from site `from` (or [`CLIENT`]) to site `to`.
    fn send(&mut self, from: usize, to: usize, frame: Vec<u8>);
}

/// What a worker thread receives: either a peer/client frame or a
/// control-plane command from the owning [`ThreadedCluster`](crate::ThreadedCluster).
#[derive(Debug)]
pub enum Input {
    /// An encoded [`Message`](crate::Message) frame from `from`.
    Frame(usize, Vec<u8>),
    /// A control command (poll, synchronize, register, stats, shutdown).
    Control(crate::threaded::Control),
}

/// The real-thread transport: one `mpsc` channel per site, frames delivered
/// in send order per sender, no faults. Cloned into every worker thread and
/// into client attachments.
///
/// The peer list is shared behind an `RwLock` so
/// [`ThreadedCluster::join`](crate::ThreadedCluster::join) can grow the
/// cluster while worker threads are live: a new site's channel is appended
/// and every existing clone of the transport sees it on its next send.
#[derive(Clone)]
pub struct ChannelTransport {
    peers: Arc<RwLock<Vec<Sender<Input>>>>,
}

impl ChannelTransport {
    /// Builds the transport over the per-site input channels.
    pub(crate) fn new(peers: Vec<Sender<Input>>) -> Self {
        ChannelTransport {
            peers: Arc::new(RwLock::new(peers)),
        }
    }

    /// Number of reachable sites.
    pub fn sites(&self) -> usize {
        self.peers.read().expect("transport lock poisoned").len()
    }

    /// Appends a new site's input channel and returns its site id. Existing
    /// clones of the transport observe the new destination immediately.
    pub(crate) fn add_peer(&self, tx: Sender<Input>) -> usize {
        let mut peers = self.peers.write().expect("transport lock poisoned");
        peers.push(tx);
        peers.len() - 1
    }

    /// Sends a control command to a site's worker thread.
    pub(crate) fn control(&self, to: usize, cmd: crate::threaded::Control) {
        // A send error means the worker is gone (panicked or shut down);
        // the caller's reply-channel recv will surface that.
        let _ = self.peers.read().expect("transport lock poisoned")[to].send(Input::Control(cmd));
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, from: usize, to: usize, frame: Vec<u8>) {
        // Client-addressed frames (acks a worker sends back to `CLIENT`,
        // e.g. `ProgramAck`) are dropped: the threaded control plane
        // synchronizes through `Control` reply channels, not frames.
        if let Some(peer) = self.peers.read().expect("transport lock poisoned").get(to) {
            let _ = peer.send(Input::Frame(from, frame));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Message;
    use std::sync::mpsc::channel;

    #[test]
    fn frames_arrive_in_send_order_with_sender_id() {
        let (tx, rx) = channel();
        let mut transport = ChannelTransport::new(vec![tx]);
        assert_eq!(transport.sites(), 1);
        transport.send(2, 0, Message::StateRequest.encode());
        transport.send(
            CLIENT,
            0,
            Message::InstallAck {
                sync: 1,
                obj: homeo_lang::ids::ObjId::new("x"),
            }
            .encode(),
        );
        match rx.recv().unwrap() {
            Input::Frame(from, frame) => {
                assert_eq!(from, 2);
                assert_eq!(Message::decode(&frame), Ok(Message::StateRequest));
            }
            other => panic!("unexpected input {other:?}"),
        }
        match rx.recv().unwrap() {
            Input::Frame(from, frame) => {
                assert_eq!(from, CLIENT);
                assert_eq!(
                    Message::decode(&frame),
                    Ok(Message::InstallAck {
                        sync: 1,
                        obj: homeo_lang::ids::ObjId::new("x"),
                    })
                );
            }
            other => panic!("unexpected input {other:?}"),
        }
    }
}
