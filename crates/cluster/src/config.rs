//! The `homeostasisd` cluster configuration: which sites exist, where they
//! listen, and how treaties are negotiated.
//!
//! The format is deliberately tiny — `key = value` lines with `#` comments,
//! parseable without any external dependency (the workspace is offline):
//!
//! ```text
//! # Three sites on loopback, demarcation-style even-split treaties.
//! sites = 3
//! site.0 = 127.0.0.1:7841
//! site.1 = 127.0.0.1:7842
//! site.2 = 127.0.0.1:7843
//! mode = even-split        # or: homeostasis
//! ```
//!
//! Two optional stanzas support **elastic membership** (see the README's
//! Elasticity section): `join = HOST:PORT` marks the config as describing
//! a site that joins a *live* cluster through the named member instead of
//! founding a new one, and `epoch = N` pins the roster epoch the operator
//! observed, so a stale config cannot join a cluster whose membership has
//! moved on.
//!
//! Every process of a cluster — each `homeostasisd` site and every load
//! client — reads the *same* file, so the peer address list and the
//! negotiation mode (which must agree across sites for allowances to line
//! up) have a single source of truth.

use std::net::{SocketAddr, ToSocketAddrs};

use homeo_protocol::{OptimizerConfig, ReplicatedMode};

/// A parsed cluster configuration: one listen address per site plus the
/// shared negotiation mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Listen address of each site, indexed by site id.
    pub addrs: Vec<SocketAddr>,
    /// How local treaties are chosen at each negotiation (must be the same
    /// in every process of the cluster).
    pub mode: ReplicatedMode,
    /// `join = HOST:PORT` — a live member's listen address. A daemon
    /// started with `--site N` under this stanza does not found the
    /// cluster: it sends a `JoinRequest` through that member and adopts
    /// the committed roster, so existing daemons keep running untouched.
    /// The address must be one of the `site.K` entries (the contact's id
    /// is derived from it).
    pub join: Option<SocketAddr>,
    /// `epoch = N` — the roster epoch the joining operator observed. When
    /// set alongside `join`, the contact refuses the join if the live
    /// roster has moved past it (a stale-config guard).
    pub epoch: Option<u64>,
}

impl ClusterSpec {
    /// A loopback spec over explicit addresses with even-split treaties.
    pub fn new(addrs: Vec<SocketAddr>) -> Self {
        ClusterSpec {
            addrs,
            mode: ReplicatedMode::EvenSplit,
            join: None,
            epoch: None,
        }
    }

    /// The site id of the `join` contact, if the stanza is present: the
    /// index of its address in the site list. `Err` when the address is
    /// not one of the `site.K` entries.
    pub fn join_contact(&self) -> Result<Option<usize>, String> {
        let Some(target) = self.join else {
            return Ok(None);
        };
        match self.addrs.iter().position(|&a| a == target) {
            Some(site) => Ok(Some(site)),
            None => Err(format!(
                "`join = {target}` does not match any `site.K` address"
            )),
        }
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.addrs.len()
    }

    /// Parses the `key = value` format documented on this module. Returns a
    /// human-readable description of the first problem found.
    pub fn parse(text: &str) -> Result<ClusterSpec, String> {
        let mut sites: Option<usize> = None;
        let mut addrs: Vec<Option<SocketAddr>> = Vec::new();
        let mut mode = ReplicatedMode::EvenSplit;
        let mut join: Option<SocketAddr> = None;
        let mut epoch: Option<u64> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", lineno + 1));
            };
            let (key, value) = (key.trim(), value.trim());
            if key == "sites" {
                if sites.is_some() {
                    return Err(format!("line {}: `sites` declared twice", lineno + 1));
                }
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("line {}: `sites` is not a number", lineno + 1))?;
                if n == 0 {
                    return Err(format!(
                        "line {}: a cluster needs at least one site",
                        lineno + 1
                    ));
                }
                sites = Some(n);
                // Only grow: `site.K` lines may legally precede `sites = N`,
                // and a too-small N is caught by the final count check
                // instead of silently truncating already-parsed addresses.
                if addrs.len() < n {
                    addrs.resize(n, None);
                }
            } else if let Some(index) = key.strip_prefix("site.") {
                let site: usize = index
                    .parse()
                    .map_err(|_| format!("line {}: bad site index `{index}`", lineno + 1))?;
                let addr = resolve(value)
                    .ok_or_else(|| format!("line {}: cannot resolve `{value}`", lineno + 1))?;
                if site >= addrs.len() {
                    addrs.resize(site + 1, None);
                }
                addrs[site] = Some(addr);
            } else if key == "mode" {
                mode = match value {
                    "even-split" => ReplicatedMode::EvenSplit,
                    "homeostasis" => ReplicatedMode::Homeostasis {
                        optimizer: Some(OptimizerConfig {
                            lookahead: 10,
                            futures: 2,
                            seed: 21,
                        }),
                    },
                    other => {
                        return Err(format!(
                            "line {}: unknown mode `{other}` (expected even-split or homeostasis)",
                            lineno + 1
                        ))
                    }
                };
            } else if key == "join" {
                let addr = resolve(value)
                    .ok_or_else(|| format!("line {}: cannot resolve `{value}`", lineno + 1))?;
                join = Some(addr);
            } else if key == "epoch" {
                let n: u64 = value
                    .parse()
                    .map_err(|_| format!("line {}: `epoch` is not a number", lineno + 1))?;
                epoch = Some(n);
            } else {
                return Err(format!("line {}: unknown key `{key}`", lineno + 1));
            }
        }
        let declared = sites.ok_or("missing `sites = N`".to_string())?;
        if addrs.len() != declared {
            return Err(format!(
                "`sites = {declared}` but {} site addresses were given",
                addrs.len()
            ));
        }
        let addrs: Vec<SocketAddr> = addrs
            .into_iter()
            .enumerate()
            .map(|(i, a)| a.ok_or(format!("missing `site.{i} = HOST:PORT`")))
            .collect::<Result<_, _>>()?;
        let spec = ClusterSpec {
            addrs,
            mode,
            join,
            epoch,
        };
        spec.join_contact()?; // a join target must be one of the sites
        Ok(spec)
    }

    /// Renders the spec back into the parseable file format (what the
    /// self-contained smoke scenario writes for the daemons it spawns).
    pub fn to_config_string(&self) -> String {
        let mut out = String::from("# Homeostasis cluster configuration\n");
        out.push_str(&format!("sites = {}\n", self.addrs.len()));
        for (site, addr) in self.addrs.iter().enumerate() {
            out.push_str(&format!("site.{site} = {addr}\n"));
        }
        let mode = match self.mode {
            ReplicatedMode::EvenSplit => "even-split",
            ReplicatedMode::Homeostasis { .. } => "homeostasis",
        };
        out.push_str(&format!("mode = {mode}\n"));
        if let Some(join) = self.join {
            out.push_str(&format!("join = {join}\n"));
        }
        if let Some(epoch) = self.epoch {
            out.push_str(&format!("epoch = {epoch}\n"));
        }
        out
    }
}

/// Resolves `HOST:PORT`, accepting both literal socket addresses and
/// resolvable host names (`localhost:7841`).
fn resolve(value: &str) -> Option<SocketAddr> {
    if let Ok(addr) = value.parse() {
        return Some(addr);
    }
    value.to_socket_addrs().ok()?.next()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_documented_example_parses_and_round_trips() {
        let text = "\
# comment\n\
sites = 2\n\
site.0 = 127.0.0.1:7841   # trailing comment\n\
site.1 = 127.0.0.1:7842\n\
mode = even-split\n";
        let spec = ClusterSpec::parse(text).expect("valid config");
        assert_eq!(spec.sites(), 2);
        assert_eq!(spec.addrs[1].port(), 7842);
        assert_eq!(spec.mode, ReplicatedMode::EvenSplit);
        let rendered = spec.to_config_string();
        assert_eq!(ClusterSpec::parse(&rendered), Ok(spec));
    }

    #[test]
    fn homeostasis_mode_and_hostnames_parse() {
        let text = "sites = 1\nsite.0 = localhost:7999\nmode = homeostasis\n";
        let spec = ClusterSpec::parse(text).expect("valid config");
        assert!(matches!(spec.mode, ReplicatedMode::Homeostasis { .. }));
        assert_eq!(spec.addrs[0].port(), 7999);
    }

    #[test]
    fn problems_are_reported_with_line_numbers() {
        assert!(ClusterSpec::parse("nonsense\n")
            .unwrap_err()
            .contains("line 1"));
        assert!(ClusterSpec::parse("sites = 0\n")
            .unwrap_err()
            .contains("at least one"));
        assert!(ClusterSpec::parse("sites = 2\nsite.0 = 127.0.0.1:1\n")
            .unwrap_err()
            .contains("site.1"));
        assert!(ClusterSpec::parse("sites = 1\nsite.0 = not-an-addr\n")
            .unwrap_err()
            .contains("resolve"));
        assert!(
            ClusterSpec::parse("sites = 1\nsite.0 = 127.0.0.1:1\nmode = magic\n")
                .unwrap_err()
                .contains("unknown mode")
        );
        assert!(ClusterSpec::parse("").unwrap_err().contains("sites"));
    }

    #[test]
    fn a_join_stanza_round_trips_and_names_its_contact() {
        let text = "\
sites = 4\n\
site.0 = 127.0.0.1:7841\n\
site.1 = 127.0.0.1:7842\n\
site.2 = 127.0.0.1:7843\n\
site.3 = 127.0.0.1:7844\n\
mode = even-split\n\
join = 127.0.0.1:7842\n\
epoch = 3\n";
        let spec = ClusterSpec::parse(text).expect("valid joining config");
        assert_eq!(spec.join_contact(), Ok(Some(1)));
        assert_eq!(spec.epoch, Some(3));
        let rendered = spec.to_config_string();
        assert_eq!(ClusterSpec::parse(&rendered), Ok(spec));
        // A join target that is not one of the sites is rejected at parse.
        let stray = "sites = 1\nsite.0 = 127.0.0.1:1\njoin = 127.0.0.1:9\n";
        assert!(ClusterSpec::parse(stray)
            .unwrap_err()
            .contains("does not match any"));
    }

    #[test]
    fn declaration_order_cannot_truncate_or_redeclare() {
        // `sites = N` after the site entries must not silently drop
        // already-parsed addresses: a too-small N is a count mismatch.
        let late = "site.0 = 127.0.0.1:1\nsite.1 = 127.0.0.1:2\nsites = 1\n";
        assert!(ClusterSpec::parse(late).unwrap_err().contains("1"));
        // The same config with a matching count parses fine either way.
        let ok = "site.0 = 127.0.0.1:1\nsite.1 = 127.0.0.1:2\nsites = 2\n";
        assert_eq!(ClusterSpec::parse(ok).expect("valid").sites(), 2);
        // A duplicate `sites` line is an error, not a resize.
        let dup = "sites = 2\nsite.0 = 127.0.0.1:1\nsite.1 = 127.0.0.1:2\nsites = 2\n";
        assert!(ClusterSpec::parse(dup).unwrap_err().contains("twice"));
    }
}
