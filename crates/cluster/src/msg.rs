//! The cluster wire protocol: [`Message`] and its length-prefixed binary
//! frame codec.
//!
//! Sites exchange nothing but these frames (through a
//! [`Transport`](crate::Transport)): client operations, treaty negotiation,
//! delta exchange, synchronization rounds and crash recovery all travel as
//! encoded [`Message`]s. The codec mirrors the WAL's on-disk idiom
//! (`homeo_store::Wal::encode`): big-endian fixed-width integers,
//! `u32`-length-prefixed strings, one tag byte per variant, and the whole
//! message wrapped in a `u32` length prefix so a byte stream can be framed
//! without lookahead.

use homeo_lang::ids::ObjId;
use homeo_runtime::SiteOp;
use serde::{Deserialize, Serialize};

/// Treaty metadata of one replicated counter, as carried by registration,
/// installation and recovery messages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterMeta {
    /// The counter object.
    pub obj: ObjId,
    /// The synchronized value (all deltas folded in at the last
    /// synchronization).
    pub base: i64,
    /// The global treaty maintains `value ≥ lower_bound`.
    pub lower_bound: i64,
    /// Per-site allowances: site `i` may let its delta drop to
    /// `allowances[i]` (`≤ 0`) before it must synchronize.
    pub allowances: Vec<i64>,
}

/// What a synchronization round does to the folded (consistent) state once
/// every site's delta has been collected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncKind {
    /// A treaty-violating order, executed serially on the folded state:
    /// decrement `amount`, refilling to `refill_to` when the folded value
    /// can no longer support the decrement.
    Order {
        /// The (non-negative) decrement.
        amount: i64,
        /// The refill level, if the workload has refill semantics.
        refill_to: Option<i64>,
    },
    /// A pin-treaty operation (`SiteOp::ForceSync`): install the folded
    /// value as the new base.
    Pin,
    /// An explicit fold with no operation attached
    /// (`SiteRuntime::synchronize`): install the folded value, skipping the
    /// renegotiation when no deltas were outstanding.
    Fold,
}

/// One frame of the cluster protocol.
///
/// Identifier conventions: `req` is an origin-scoped request id (globally
/// unique because it is allocated as `n * sites + origin`), `sync` is a
/// coordinator-scoped round id with the same namespacing, so any site can
/// recover the coordinator of a round as `sync % sites`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message {
    /// A batch of client operations submitted to a site's inbox in one
    /// frame (sent by the client attachment, never site-to-site). Batching
    /// at the frame level is what lets a load generator amortize the
    /// encode/enqueue cost over many operations; a singleton batch is the
    /// unbatched submit.
    Submit {
        /// The operations, in submission order.
        ops: Vec<SiteOp>,
    },
    /// Registers a counter on every site with its freshly negotiated treaty
    /// state.
    Register {
        /// The counter and its treaty metadata.
        meta: CounterMeta,
    },
    /// Asks the counter's coordinator to run a synchronization round.
    SyncRequest {
        /// Origin-scoped request id (for deduplication and completion).
        req: u64,
        /// The counter to fold.
        obj: ObjId,
        /// What to do on the folded state.
        kind: SyncKind,
    },
    /// Coordinator → peers: report your delta for `obj` and freeze it until
    /// the matching [`Message::Install`] arrives.
    DeltaRequest {
        /// Coordinator-scoped round id.
        sync: u64,
        /// The counter being folded.
        obj: ObjId,
    },
    /// Peer → coordinator: the peer's unsynchronized delta (its engine value
    /// minus the shared base).
    DeltaReply {
        /// The round being answered.
        sync: u64,
        /// The counter being folded.
        obj: ObjId,
        /// `value@site − base`.
        delta: i64,
    },
    /// Coordinator → peers: complete the round and unfreeze. With `apply`
    /// set, install the synchronized base and the renegotiated treaty; with
    /// it clear (a fold whose deltas summed to zero), leave local state —
    /// including any nonzero per-site delta — untouched, mirroring
    /// `ReplicatedRuntime::synchronize`'s skip of already-synchronized
    /// counters.
    Install {
        /// The round being completed.
        sync: u64,
        /// The treaty state (base, lower bound, allowances).
        meta: CounterMeta,
        /// Whether to rebase the local engine value and treaty metadata.
        apply: bool,
    },
    /// Peer → coordinator: the install was applied.
    InstallAck {
        /// The round being acknowledged.
        sync: u64,
        /// The counter that was installed.
        obj: ObjId,
    },
    /// Coordinator → origin: the requested round completed.
    SyncDone {
        /// The origin's request id.
        req: u64,
        /// Whether the refill branch ran (order kinds only).
        refilled: bool,
        /// Solver time of the renegotiation, in microseconds.
        solver_micros: u64,
        /// Whether any outstanding delta was actually folded (`Fold` kinds
        /// report `false` when the counter was already synchronized).
        folded: bool,
    },
    /// A restarted site asking a live peer for the cluster's treaty state
    /// (the paper's "all in-memory state can be recomputed" stance: engines
    /// recover from their WAL, treaty metadata from any peer).
    StateRequest,
    /// The peer's full treaty state.
    StateReply {
        /// Every registered counter's metadata.
        counters: Vec<CounterMeta>,
    },
}

impl Message {
    /// Encodes the message as a length-prefixed frame: a `u32` byte length
    /// (big-endian, excluding the prefix itself) followed by the body.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_into(&mut Vec::new())
    }

    /// Encodes a [`Message::Submit`] frame directly from a **borrowed**
    /// batch, through the same scratch-buffer path as
    /// [`Message::encode_into`]. This is the client attachments' hot path:
    /// shipping a batch must not deep-clone every operation just to build
    /// an owned `Message` that is immediately encoded and dropped.
    pub fn encode_submit_into(ops: &[SiteOp], scratch: &mut Vec<u8>) -> Vec<u8> {
        scratch.clear();
        scratch.extend_from_slice(&[0u8; 4]);
        scratch.push(0); // the Submit tag
        scratch.extend_from_slice(&(ops.len() as u32).to_be_bytes());
        for op in ops {
            encode_op(op, scratch);
        }
        let len = (scratch.len() - 4) as u32;
        scratch[..4].copy_from_slice(&len.to_be_bytes());
        scratch.as_slice().to_vec()
    }

    /// [`Message::encode`] through a reusable per-connection scratch buffer:
    /// the frame is assembled in `scratch` (cleared first, capacity kept
    /// across calls) and the returned `Vec` is one exact-size allocation of
    /// the finished frame. Encoding a stream of frames through one scratch
    /// buffer avoids the per-frame body allocation and its growth
    /// reallocations — the hot path for every transport connection.
    pub fn encode_into(&self, scratch: &mut Vec<u8>) -> Vec<u8> {
        scratch.clear();
        scratch.extend_from_slice(&[0u8; 4]);
        self.encode_body(scratch);
        let len = (scratch.len() - 4) as u32;
        scratch[..4].copy_from_slice(&len.to_be_bytes());
        scratch.as_slice().to_vec()
    }

    /// Decodes one frame produced by [`Message::encode`]. Returns `None` on
    /// a truncated or malformed frame, or when trailing bytes follow the
    /// message body (frames carry exactly one message).
    pub fn decode(frame: &[u8]) -> Option<Message> {
        let mut cursor = Cursor {
            data: frame,
            pos: 0,
        };
        let len = cursor.u32()? as usize;
        if frame.len() != 4 + len {
            return None;
        }
        let msg = Self::decode_body(&mut cursor)?;
        (cursor.pos == frame.len()).then_some(msg)
    }

    fn encode_body(&self, buf: &mut Vec<u8>) {
        match self {
            Message::Submit { ops } => {
                buf.push(0);
                buf.extend_from_slice(&(ops.len() as u32).to_be_bytes());
                for op in ops {
                    encode_op(op, buf);
                }
            }
            Message::Register { meta } => {
                buf.push(1);
                encode_meta(meta, buf);
            }
            Message::SyncRequest { req, obj, kind } => {
                buf.push(2);
                buf.extend_from_slice(&req.to_be_bytes());
                encode_str(obj.as_str(), buf);
                encode_kind(kind, buf);
            }
            Message::DeltaRequest { sync, obj } => {
                buf.push(3);
                buf.extend_from_slice(&sync.to_be_bytes());
                encode_str(obj.as_str(), buf);
            }
            Message::DeltaReply { sync, obj, delta } => {
                buf.push(4);
                buf.extend_from_slice(&sync.to_be_bytes());
                encode_str(obj.as_str(), buf);
                buf.extend_from_slice(&delta.to_be_bytes());
            }
            Message::Install { sync, meta, apply } => {
                buf.push(5);
                buf.extend_from_slice(&sync.to_be_bytes());
                encode_meta(meta, buf);
                buf.push(u8::from(*apply));
            }
            Message::InstallAck { sync, obj } => {
                buf.push(6);
                buf.extend_from_slice(&sync.to_be_bytes());
                encode_str(obj.as_str(), buf);
            }
            Message::SyncDone {
                req,
                refilled,
                solver_micros,
                folded,
            } => {
                buf.push(7);
                buf.extend_from_slice(&req.to_be_bytes());
                buf.push(u8::from(*refilled));
                buf.extend_from_slice(&solver_micros.to_be_bytes());
                buf.push(u8::from(*folded));
            }
            Message::StateRequest => buf.push(8),
            Message::StateReply { counters } => {
                buf.push(9);
                buf.extend_from_slice(&(counters.len() as u32).to_be_bytes());
                for meta in counters {
                    encode_meta(meta, buf);
                }
            }
        }
    }

    fn decode_body(cursor: &mut Cursor<'_>) -> Option<Message> {
        Some(match cursor.u8()? {
            0 => {
                let count = cursor.u32()? as usize;
                let mut ops = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    ops.push(decode_op(cursor)?);
                }
                Message::Submit { ops }
            }
            1 => Message::Register {
                meta: decode_meta(cursor)?,
            },
            2 => Message::SyncRequest {
                req: cursor.u64()?,
                obj: ObjId::new(decode_str(cursor)?),
                kind: decode_kind(cursor)?,
            },
            3 => Message::DeltaRequest {
                sync: cursor.u64()?,
                obj: ObjId::new(decode_str(cursor)?),
            },
            4 => Message::DeltaReply {
                sync: cursor.u64()?,
                obj: ObjId::new(decode_str(cursor)?),
                delta: cursor.i64()?,
            },
            5 => Message::Install {
                sync: cursor.u64()?,
                meta: decode_meta(cursor)?,
                apply: match cursor.u8()? {
                    0 => false,
                    1 => true,
                    _ => return None,
                },
            },
            6 => Message::InstallAck {
                sync: cursor.u64()?,
                obj: ObjId::new(decode_str(cursor)?),
            },
            7 => Message::SyncDone {
                req: cursor.u64()?,
                refilled: cursor.u8()? != 0,
                solver_micros: cursor.u64()?,
                folded: cursor.u8()? != 0,
            },
            8 => Message::StateRequest,
            9 => {
                let count = cursor.u32()? as usize;
                let mut counters = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    counters.push(decode_meta(cursor)?);
                }
                Message::StateReply { counters }
            }
            _ => return None,
        })
    }
}

fn encode_op(op: &SiteOp, buf: &mut Vec<u8>) {
    match op {
        SiteOp::Order {
            obj,
            amount,
            refill_to,
        } => {
            buf.push(0);
            encode_str(obj.as_str(), buf);
            buf.extend_from_slice(&amount.to_be_bytes());
            match refill_to {
                None => buf.push(0),
                Some(r) => {
                    buf.push(1);
                    buf.extend_from_slice(&r.to_be_bytes());
                }
            }
        }
        SiteOp::Increment { obj, amount } => {
            buf.push(1);
            encode_str(obj.as_str(), buf);
            buf.extend_from_slice(&amount.to_be_bytes());
        }
        SiteOp::ForceSync { obj } => {
            buf.push(2);
            encode_str(obj.as_str(), buf);
        }
        SiteOp::Transaction { index } => {
            buf.push(3);
            buf.extend_from_slice(&(*index as u64).to_be_bytes());
        }
    }
}

fn decode_op(cursor: &mut Cursor<'_>) -> Option<SiteOp> {
    Some(match cursor.u8()? {
        0 => SiteOp::Order {
            obj: ObjId::new(decode_str(cursor)?),
            amount: cursor.i64()?,
            refill_to: match cursor.u8()? {
                0 => None,
                1 => Some(cursor.i64()?),
                _ => return None,
            },
        },
        1 => SiteOp::Increment {
            obj: ObjId::new(decode_str(cursor)?),
            amount: cursor.i64()?,
        },
        2 => SiteOp::ForceSync {
            obj: ObjId::new(decode_str(cursor)?),
        },
        3 => SiteOp::Transaction {
            index: cursor.u64()? as usize,
        },
        _ => return None,
    })
}

fn encode_kind(kind: &SyncKind, buf: &mut Vec<u8>) {
    match kind {
        SyncKind::Order { amount, refill_to } => {
            buf.push(0);
            buf.extend_from_slice(&amount.to_be_bytes());
            match refill_to {
                None => buf.push(0),
                Some(r) => {
                    buf.push(1);
                    buf.extend_from_slice(&r.to_be_bytes());
                }
            }
        }
        SyncKind::Pin => buf.push(1),
        SyncKind::Fold => buf.push(2),
    }
}

fn decode_kind(cursor: &mut Cursor<'_>) -> Option<SyncKind> {
    Some(match cursor.u8()? {
        0 => SyncKind::Order {
            amount: cursor.i64()?,
            refill_to: match cursor.u8()? {
                0 => None,
                1 => Some(cursor.i64()?),
                _ => return None,
            },
        },
        1 => SyncKind::Pin,
        2 => SyncKind::Fold,
        _ => return None,
    })
}

fn encode_meta(meta: &CounterMeta, buf: &mut Vec<u8>) {
    encode_str(meta.obj.as_str(), buf);
    buf.extend_from_slice(&meta.base.to_be_bytes());
    buf.extend_from_slice(&meta.lower_bound.to_be_bytes());
    buf.extend_from_slice(&(meta.allowances.len() as u32).to_be_bytes());
    for a in &meta.allowances {
        buf.extend_from_slice(&a.to_be_bytes());
    }
}

fn decode_meta(cursor: &mut Cursor<'_>) -> Option<CounterMeta> {
    let obj = ObjId::new(decode_str(cursor)?);
    let base = cursor.i64()?;
    let lower_bound = cursor.i64()?;
    let count = cursor.u32()? as usize;
    let mut allowances = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        allowances.push(cursor.i64()?);
    }
    Some(CounterMeta {
        obj,
        base,
        lower_bound,
        allowances,
    })
}

fn encode_str(s: &str, buf: &mut Vec<u8>) {
    let bytes = s.as_bytes();
    buf.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    buf.extend_from_slice(bytes);
}

fn decode_str(cursor: &mut Cursor<'_>) -> Option<String> {
    let len = cursor.u32()? as usize;
    String::from_utf8(cursor.take(len)?.to_vec()).ok()
}

/// A bounds-checked big-endian reader over a byte slice.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.data.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_be_bytes(s.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_be_bytes(s.try_into().expect("8 bytes")))
    }

    fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|s| i64::from_be_bytes(s.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> CounterMeta {
        CounterMeta {
            obj: ObjId::new("stock[7]"),
            base: 100,
            lower_bound: 1,
            allowances: vec![-33, -33, 0],
        }
    }

    fn exemplars() -> Vec<Message> {
        vec![
            Message::Submit {
                ops: vec![SiteOp::Order {
                    obj: ObjId::new("stock[0]"),
                    amount: 3,
                    refill_to: Some(99),
                }],
            },
            Message::Submit {
                ops: vec![
                    SiteOp::Order {
                        obj: ObjId::new("stock[1]"),
                        amount: 1,
                        refill_to: None,
                    },
                    SiteOp::Increment {
                        obj: ObjId::new("balance[2]"),
                        amount: -7,
                    },
                    SiteOp::ForceSync {
                        obj: ObjId::new("neworder[1]"),
                    },
                    SiteOp::Transaction { index: 5 },
                ],
            },
            Message::Submit { ops: Vec::new() },
            Message::Register { meta: meta() },
            Message::SyncRequest {
                req: 17,
                obj: ObjId::new("stock[7]"),
                kind: SyncKind::Order {
                    amount: 2,
                    refill_to: Some(40),
                },
            },
            Message::SyncRequest {
                req: 18,
                obj: ObjId::new("stock[7]"),
                kind: SyncKind::Pin,
            },
            Message::SyncRequest {
                req: 19,
                obj: ObjId::new("stock[7]"),
                kind: SyncKind::Fold,
            },
            Message::DeltaRequest {
                sync: 4,
                obj: ObjId::new("stock[7]"),
            },
            Message::DeltaReply {
                sync: 4,
                obj: ObjId::new("stock[7]"),
                delta: -12,
            },
            Message::Install {
                sync: 4,
                meta: meta(),
                apply: true,
            },
            Message::Install {
                sync: 5,
                meta: meta(),
                apply: false,
            },
            Message::InstallAck {
                sync: 4,
                obj: ObjId::new("stock[7]"),
            },
            Message::SyncDone {
                req: 17,
                refilled: true,
                solver_micros: 250,
                folded: true,
            },
            Message::StateRequest,
            Message::StateReply {
                counters: vec![meta(), meta()],
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for msg in exemplars() {
            let frame = msg.encode();
            let decoded = Message::decode(&frame).unwrap_or_else(|| panic!("decode {msg:?}"));
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn encode_into_reuses_the_scratch_and_matches_encode() {
        let mut scratch = Vec::new();
        for msg in exemplars() {
            let frame = msg.encode_into(&mut scratch);
            assert_eq!(frame, msg.encode());
            assert_eq!(Message::decode(&frame), Some(msg));
        }
        // The scratch retains its capacity across frames (that is the
        // point), and holds the last frame's bytes.
        assert!(scratch.capacity() > 0);
    }

    #[test]
    fn encode_submit_into_matches_the_owned_encoding() {
        let ops = vec![
            SiteOp::Order {
                obj: ObjId::new("stock[3]"),
                amount: 2,
                refill_to: None,
            },
            SiteOp::Transaction { index: 1 },
        ];
        let mut scratch = Vec::new();
        let frame = Message::encode_submit_into(&ops, &mut scratch);
        assert_eq!(frame, Message::Submit { ops }.encode());
        let empty = Message::encode_submit_into(&[], &mut scratch);
        assert_eq!(empty, Message::Submit { ops: Vec::new() }.encode());
    }

    #[test]
    fn frames_are_length_prefixed() {
        let frame = Message::StateRequest.encode();
        assert_eq!(frame.len(), 5);
        assert_eq!(u32::from_be_bytes(frame[..4].try_into().unwrap()), 1);
    }

    #[test]
    fn truncated_and_padded_frames_are_rejected() {
        for msg in exemplars() {
            let frame = msg.encode();
            for cut in 0..frame.len() {
                assert!(
                    Message::decode(&frame[..cut]).is_none(),
                    "truncation at {cut} of {msg:?} decoded"
                );
            }
            let mut padded = frame.clone();
            padded.push(0);
            assert!(Message::decode(&padded).is_none(), "padding accepted");
        }
        assert!(Message::decode(&[]).is_none());
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let frame = vec![0, 0, 0, 1, 99];
        assert!(Message::decode(&frame).is_none());
    }
}
