//! The cluster wire protocol: [`Message`] and its length-prefixed binary
//! frame codec.
//!
//! Sites exchange nothing but these frames (through a
//! [`Transport`](crate::Transport)): client operations, treaty negotiation,
//! delta exchange, synchronization rounds and crash recovery all travel as
//! encoded [`Message`]s. The codec mirrors the WAL's on-disk idiom
//! (`homeo_store::Wal::encode`): big-endian fixed-width integers,
//! `u32`-length-prefixed strings, one tag byte per variant, and the whole
//! message wrapped in a `u32` length prefix so a byte stream can be framed
//! without lookahead.

use homeo_lang::ids::ObjId;
use homeo_protocol::{OptimizerConfig, ProgramBundle, ReplicatedStats, Roster};
use homeo_runtime::{OpOutcome, SiteOp};
use serde::{Deserialize, Serialize};

/// Upper bound on one frame's body length, enforced **before** any body
/// bytes are buffered or parsed. An untrusted socket can claim any `u32` in
/// its length prefix; without this bound a single 4-byte prefix could make
/// the receiver allocate gigabytes. Generous for real traffic (the largest
/// legitimate frames — multi-thousand-op submit batches, full state
/// replies — are a few hundred KiB).
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Why a frame failed to decode. Transports treat any of these as a fatal
/// protocol error on the connection that produced the bytes: the stream
/// offset is unrecoverable once framing is wrong, so the connection is
/// closed (peers reconnect with a fresh stream; clients surface the error).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the frame its length prefix promised.
    Truncated,
    /// The length prefix claims a body larger than [`MAX_FRAME_LEN`].
    Oversized {
        /// The claimed body length.
        len: usize,
    },
    /// The body bytes do not parse as exactly one message (unknown tag,
    /// invalid value, short body or trailing bytes).
    Malformed,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated before its declared length"),
            CodecError::Oversized { len } => write!(
                f,
                "frame length prefix {len} exceeds the {MAX_FRAME_LEN}-byte bound"
            ),
            CodecError::Malformed => write!(f, "frame body is not exactly one valid message"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Reassembles length-prefixed frames from an arbitrary sequence of byte
/// chunks — the read side of a TCP connection, where one `read` may return
/// half a frame, three frames, or a frame boundary split inside the length
/// prefix itself.
///
/// Push whatever the socket produced with [`FrameAssembler::push`], then
/// drain complete messages with [`FrameAssembler::next_message`]. The
/// length-prefix bound ([`MAX_FRAME_LEN`]) is checked as soon as the four
/// prefix bytes are available, before any body byte is buffered against it,
/// so a hostile prefix cannot force an allocation.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes read from the connection.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame (length prefix included), or `Ok(None)`
    /// when the buffer holds only a partial frame. `Err` means the stream
    /// is unrecoverable and the connection must be closed.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, CodecError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_LEN {
            return Err(CodecError::Oversized { len });
        }
        let total = 4 + len;
        if self.buf.len() < total {
            return Ok(None);
        }
        Ok(Some(self.buf.drain(..total).collect()))
    }

    /// Pops and decodes the next complete message, or `Ok(None)` when only
    /// a partial frame is buffered.
    pub fn next_message(&mut self) -> Result<Option<Message>, CodecError> {
        match self.next_frame()? {
            Some(frame) => Message::decode(&frame).map(Some),
            None => Ok(None),
        }
    }
}

/// Treaty metadata of one replicated counter, as carried by registration,
/// installation and recovery messages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterMeta {
    /// The counter object.
    pub obj: ObjId,
    /// The synchronized value (all deltas folded in at the last
    /// synchronization).
    pub base: i64,
    /// The global treaty maintains `value ≥ lower_bound`.
    pub lower_bound: i64,
    /// The sites sharing this counter, sorted ascending. The counter's
    /// coordinator is `members[shard_hash % len]`, and a membership change
    /// reaches a counter only through a [`SyncKind::Handoff`] round that
    /// installs a meta with the new member list — so per counter, the
    /// coordinator moves atomically under the round's freeze/ack barrier.
    /// A site holding the meta but absent from `members` keeps it purely
    /// for request routing (it proxies operations to the coordinator).
    pub members: Vec<usize>,
    /// Per-member allowances, parallel to `members`: the site `members[i]`
    /// may let its delta drop to `allowances[i]` (`≤ 0`) before it must
    /// synchronize.
    pub allowances: Vec<i64>,
}

impl CounterMeta {
    /// The allowance of `site`, or `None` when `site` is not a member.
    pub fn allowance_of(&self, site: usize) -> Option<i64> {
        self.members
            .binary_search(&site)
            .ok()
            .map(|i| self.allowances[i])
    }
}

/// What a synchronization round does to the folded (consistent) state once
/// every site's delta has been collected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncKind {
    /// A treaty-violating order, executed serially on the folded state:
    /// decrement `amount`, refilling to `refill_to` when the folded value
    /// can no longer support the decrement.
    Order {
        /// The (non-negative) decrement.
        amount: i64,
        /// The refill level, if the workload has refill semantics.
        refill_to: Option<i64>,
    },
    /// A pin-treaty operation (`SiteOp::ForceSync`): install the folded
    /// value as the new base.
    Pin,
    /// An explicit fold with no operation attached
    /// (`SiteRuntime::synchronize`): install the folded value, skipping the
    /// renegotiation when no deltas were outstanding.
    Fold,
    /// A demand-adaptive proactive re-split, fired by a site *before* its
    /// allowance is violated: fold and renegotiate like [`SyncKind::Pin`],
    /// but fire-and-forget — no client operation waits on the round.
    Proactive,
    /// A membership handoff: fold the deltas of the counter's *current*
    /// members, then re-split the allowances over `members` (the new,
    /// sorted member list) and install the meta to the union of old and new
    /// members. This is how a join donates headroom to (and a leave folds
    /// the deltas out of) one counter; the membership coordinator issues
    /// one per counter and commits the roster once every handoff is done.
    Handoff {
        /// The counter's member list after the change, sorted ascending.
        members: Vec<usize>,
    },
}

/// One frame of the cluster protocol.
///
/// Identifier conventions: `req` is an origin-scoped request id (globally
/// unique because it is allocated as `n * sites + origin`), `sync` is a
/// coordinator-scoped round id with the same namespacing, so any site can
/// recover the coordinator of a round as `sync % sites`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message {
    /// A batch of client operations submitted to a site's inbox in one
    /// frame (sent by the client attachment, never site-to-site). Batching
    /// at the frame level is what lets a load generator amortize the
    /// encode/enqueue cost over many operations; a singleton batch is the
    /// unbatched submit.
    Submit {
        /// The operations, in submission order.
        ops: Vec<SiteOp>,
    },
    /// Registers a counter on every site with its freshly negotiated treaty
    /// state.
    Register {
        /// The counter and its treaty metadata.
        meta: CounterMeta,
    },
    /// Asks the counter's coordinator to run a synchronization round.
    SyncRequest {
        /// The site awaiting the [`Message::SyncDone`]. Carried explicitly
        /// (rather than inferred from the sending connection) so a request
        /// that lands on an ex-coordinator mid-handoff can be forwarded to
        /// the counter's new coordinator without losing the origin.
        origin: u64,
        /// Origin-scoped request id (for deduplication and completion).
        req: u64,
        /// The counter to fold.
        obj: ObjId,
        /// What to do on the folded state.
        kind: SyncKind,
    },
    /// Coordinator → peers: report your delta for `obj` and freeze it until
    /// the matching [`Message::Install`] arrives.
    DeltaRequest {
        /// Coordinator-scoped round id.
        sync: u64,
        /// The counter being folded.
        obj: ObjId,
    },
    /// Peer → coordinator: the peer's unsynchronized delta (its engine value
    /// minus the shared base).
    DeltaReply {
        /// The round being answered.
        sync: u64,
        /// The counter being folded.
        obj: ObjId,
        /// `value@site − base`.
        delta: i64,
    },
    /// Coordinator → peers: complete the round and unfreeze. With `apply`
    /// set, install the synchronized base and the renegotiated treaty; with
    /// it clear (a fold whose deltas summed to zero), leave local state —
    /// including any nonzero per-site delta — untouched, mirroring
    /// `ReplicatedRuntime::synchronize`'s skip of already-synchronized
    /// counters.
    Install {
        /// The round being completed.
        sync: u64,
        /// The treaty state (base, lower bound, allowances).
        meta: CounterMeta,
        /// Whether to rebase the local engine value and treaty metadata.
        apply: bool,
    },
    /// Peer → coordinator: the install was applied.
    InstallAck {
        /// The round being acknowledged.
        sync: u64,
        /// The counter that was installed.
        obj: ObjId,
    },
    /// Coordinator → origin: the requested round completed.
    SyncDone {
        /// The origin's request id.
        req: u64,
        /// Whether the refill branch ran (order kinds only).
        refilled: bool,
        /// Solver time of the renegotiation, in microseconds.
        solver_micros: u64,
        /// Whether any outstanding delta was actually folded (`Fold` kinds
        /// report `false` when the counter was already synchronized).
        folded: bool,
    },
    /// A restarted site asking a live peer for the cluster's treaty state
    /// (the paper's "all in-memory state can be recomputed" stance: engines
    /// recover from their WAL, treaty metadata from any peer).
    StateRequest,
    /// The peer's full treaty state.
    StateReply {
        /// Every registered counter's metadata.
        counters: Vec<CounterMeta>,
        /// The peer's current membership roster — what makes WAL recovery
        /// replay into the *current* epoch: a restarted site adopts the
        /// buddy's roster alongside the treaty state, so it rejects frames
        /// from members evicted while it was down.
        roster: Roster,
    },
    /// The first frame on every TCP connection: who is connecting. Peers
    /// identify with their site id and their **incarnation epoch** (fresh
    /// per node start); client attachments send [`CLIENT_PEER`]. Consumed
    /// by the accepting transport — a worker never sees it. The epoch is
    /// how a site distinguishes a restarted peer (new epoch → its cached
    /// outbound socket to that peer is dead and must be dropped) from a
    /// mere reconnect by the same incarnation (same epoch → keep it).
    Hello {
        /// The connecting side's site id, or [`CLIENT_PEER`] for a client.
        peer: u64,
        /// The connecting node's incarnation epoch (0 for clients).
        epoch: u64,
    },
    /// Client → site: install this counter's initial value and treaty
    /// metadata (the multi-process form of cluster-wide registration, where
    /// no coordinating thread can reach every engine directly). The site
    /// writes `meta.base` through its engine (WAL-logged) if the counter is
    /// unknown, installs the treaty, and always answers [`Message::SeedAck`]
    /// — so re-seeding after a client reconnect is idempotent. The seeding
    /// client must collect every site's ack before submitting operations:
    /// the acks are what orders the seed before any cross-connection frame
    /// that references the counter.
    Seed {
        /// The counter and its negotiated treaty metadata.
        meta: CounterMeta,
    },
    /// Site → seeding client: the seed was applied (or was already known).
    SeedAck {
        /// The seeded counter.
        obj: ObjId,
    },
    /// Client → site: reply with the outcomes of every submitted operation
    /// once the site is idle (the wire form of the poll control command).
    PollRequest,
    /// Site → client: the drained outcomes, in submission order.
    PollReply {
        /// One outcome per completed operation.
        outcomes: Vec<OpOutcome>,
    },
    /// Client → site: fold every registered counter
    /// (`SiteRuntime::synchronize` over the wire).
    SyncAllRequest,
    /// Site → client: the fold completed everywhere.
    SyncAllReply {
        /// Total solver time of the renegotiations, in microseconds.
        solver_micros: u64,
    },
    /// Client → site: reply with the site's aggregate statistics.
    StatsRequest,
    /// Site → client: the site's aggregate statistics.
    StatsReply {
        /// Local commits, synchronizations and negotiations at this site.
        stats: ReplicatedStats,
    },
    /// Client → site: reply with the site's full telemetry dump
    /// (counters, gauges and latency histograms) as Prometheus-style text.
    MetricsRequest,
    /// Site → client: the rendered telemetry dump.
    MetricsReply {
        /// Prometheus-style text exposition (`# TYPE` headers followed by
        /// `name value` lines; histograms as `_count`/`_sum`/quantile
        /// lines).
        text: String,
    },
    /// Registers a set of `L++` transaction programs on a site. Program
    /// source travels as text: the receiving site parses it through
    /// `homeo_lang`, derives its symbolic/joint tables through
    /// `homeo_analysis`, and negotiates the round-0 treaties from the
    /// bundle's initial database — all deterministic, so every site arrives
    /// at identical treaty state without treaties ever crossing the wire.
    /// Idempotent: re-registering the same bundle only re-acks.
    RegisterProgram {
        /// The program sources, placement map, initial database and
        /// optimizer settings.
        bundle: ProgramBundle,
    },
    /// Site → registering client: the bundle was parsed, analyzed and
    /// installed (or was already registered).
    ProgramAck {
        /// Number of registered programs after the install.
        count: u64,
    },
    /// Origin → general coordinator (site 0): run a general synchronization
    /// round — freeze, fold every site's local objects, optionally re-run a
    /// treaty-violating transaction on the folded state, renegotiate.
    ProgramSync {
        /// Origin-scoped request id (completion arrives as
        /// [`Message::SyncDone`]).
        req: u64,
        /// The violating transaction to re-run on the folded state, or
        /// `None` for a pure fold (`SiteRuntime::synchronize`).
        txn: Option<u64>,
    },
    /// General coordinator → peers: freeze general execution and report the
    /// values of your local objects.
    ProgramCollect {
        /// Coordinator-scoped round id.
        sync: u64,
    },
    /// Peer → general coordinator: the values of the peer's local objects.
    ProgramDeltas {
        /// The round being answered.
        sync: u64,
        /// `(object, value)` for every object the `Loc` map places at the
        /// replying site.
        values: Vec<(ObjId, i64)>,
    },
    /// General coordinator → peers: install the folded global database,
    /// re-run the violating transaction (if any) deterministically, set the
    /// treaty round counter to `round`, renegotiate locally, and unfreeze.
    ProgramInstall {
        /// The round being completed.
        sync: u64,
        /// The violating transaction every site must re-run, if any.
        txn: Option<u64>,
        /// The coordinator's treaty round counter *before* the install's
        /// renegotiation — sites adopt it so the lockstep seed
        /// (`optimizer.seed + round`) stays identical after restarts.
        round: u64,
        /// The folded authoritative global database.
        db: Vec<(ObjId, i64)>,
    },
    /// Peer → general coordinator: the install (and renegotiation) ran.
    ProgramInstallAck {
        /// The round being acknowledged.
        sync: u64,
    },
    /// Joiner (or an admin client) → membership coordinator: admit `site`
    /// into the cluster. Forwarded to the current leader (`members[0]`)
    /// when it lands elsewhere. Answered by [`Message::JoinAck`] sent to
    /// `site` itself (not the requesting connection), carrying everything
    /// the joiner needs to participate.
    JoinRequest {
        /// The joining site's id.
        site: u64,
        /// The joiner's listen address (`host:port`), or empty for
        /// in-process transports that route by site id alone.
        addr: String,
        /// If set, the join is refused unless the cluster's roster epoch
        /// matches — how `homeostasisd`'s `epoch =` stanza pins a config
        /// against a stale cluster.
        expected_epoch: Option<u64>,
    },
    /// Membership coordinator → joiner: the admission verdict. On `ok`, the
    /// roster already includes the joiner (the epoch is the one the pending
    /// handoffs will commit), and the registered program bundle (if any)
    /// rides along so the joiner derives identical treaty state.
    JoinAck {
        /// Whether the join was admitted.
        ok: bool,
        /// The roster the joiner participates under (on refusal: the
        /// cluster's current roster, for diagnostics).
        roster: Roster,
        /// Listen addresses indexed by site id (empty strings where
        /// unknown), so a TCP joiner can dial every peer.
        addrs: Vec<String>,
        /// The registered program bundle and the site count it was
        /// registered at, if programs are installed. General rounds stay
        /// pinned to the registration-time membership, so the joiner builds
        /// the identical home mapping from this count, not the roster size.
        program: Option<(ProgramBundle, u64)>,
    },
    /// Any member (or an admin client) → membership coordinator: retire
    /// `site`. The leaver's outstanding deltas are folded by the per-counter
    /// handoffs before the epoch-bumped roster (which excludes it) commits;
    /// the leaver learns of its own eviction from the final
    /// [`Message::MembershipInstall`].
    Leave {
        /// The site to retire.
        site: u64,
    },
    /// Membership coordinator → everyone (old members, joiner, leaver): the
    /// membership change is complete; adopt this roster iff its epoch is
    /// newer than yours. Members absent from an adopted roster are evicted:
    /// their frames (except a rejoin [`Message::JoinRequest`]) are dropped.
    MembershipInstall {
        /// The committed epoch-stamped roster.
        roster: Roster,
        /// Listen addresses indexed by site id (empty strings where
        /// unknown).
        addrs: Vec<String>,
    },
}

/// The [`Message::Hello`] peer id a client attachment announces (sites use
/// their index). Mirrors [`crate::transport::CLIENT`] on the wire.
pub const CLIENT_PEER: u64 = u64::MAX;

impl Message {
    /// Encodes the message as a length-prefixed frame: a `u32` byte length
    /// (big-endian, excluding the prefix itself) followed by the body.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_into(&mut Vec::new())
    }

    /// Encodes a [`Message::Submit`] frame directly from a **borrowed**
    /// batch, through the same scratch-buffer path as
    /// [`Message::encode_into`]. This is the client attachments' hot path:
    /// shipping a batch must not deep-clone every operation just to build
    /// an owned `Message` that is immediately encoded and dropped.
    pub fn encode_submit_into(ops: &[SiteOp], scratch: &mut Vec<u8>) -> Vec<u8> {
        scratch.clear();
        scratch.extend_from_slice(&[0u8; 4]);
        scratch.push(0); // the Submit tag
        scratch.extend_from_slice(&(ops.len() as u32).to_be_bytes());
        for op in ops {
            encode_op(op, scratch);
        }
        let len = (scratch.len() - 4) as u32;
        scratch[..4].copy_from_slice(&len.to_be_bytes());
        scratch.as_slice().to_vec()
    }

    /// [`Message::encode`] through a reusable per-connection scratch buffer:
    /// the frame is assembled in `scratch` (cleared first, capacity kept
    /// across calls) and the returned `Vec` is one exact-size allocation of
    /// the finished frame. Encoding a stream of frames through one scratch
    /// buffer avoids the per-frame body allocation and its growth
    /// reallocations — the hot path for every transport connection.
    pub fn encode_into(&self, scratch: &mut Vec<u8>) -> Vec<u8> {
        scratch.clear();
        scratch.extend_from_slice(&[0u8; 4]);
        self.encode_body(scratch);
        let len = (scratch.len() - 4) as u32;
        scratch[..4].copy_from_slice(&len.to_be_bytes());
        scratch.as_slice().to_vec()
    }

    /// Decodes one frame produced by [`Message::encode`].
    ///
    /// Never panics on hostile input: an oversized length prefix, a frame
    /// shorter than its prefix promises, an unknown tag, an invalid value
    /// or trailing bytes after the body all return the matching
    /// [`CodecError`] (frames carry exactly one message). Transports treat
    /// any error as fatal for the connection that produced the bytes.
    pub fn decode(frame: &[u8]) -> Result<Message, CodecError> {
        let mut cursor = Cursor {
            data: frame,
            pos: 0,
        };
        let len = cursor.u32().ok_or(CodecError::Truncated)? as usize;
        if len > MAX_FRAME_LEN {
            return Err(CodecError::Oversized { len });
        }
        if frame.len() < 4 + len {
            return Err(CodecError::Truncated);
        }
        if frame.len() > 4 + len {
            return Err(CodecError::Malformed);
        }
        let msg = Self::decode_body(&mut cursor).ok_or(CodecError::Malformed)?;
        if cursor.pos == frame.len() {
            Ok(msg)
        } else {
            Err(CodecError::Malformed)
        }
    }

    fn encode_body(&self, buf: &mut Vec<u8>) {
        match self {
            Message::Submit { ops } => {
                buf.push(0);
                buf.extend_from_slice(&(ops.len() as u32).to_be_bytes());
                for op in ops {
                    encode_op(op, buf);
                }
            }
            Message::Register { meta } => {
                buf.push(1);
                encode_meta(meta, buf);
            }
            Message::SyncRequest {
                origin,
                req,
                obj,
                kind,
            } => {
                buf.push(2);
                buf.extend_from_slice(&origin.to_be_bytes());
                buf.extend_from_slice(&req.to_be_bytes());
                encode_str(obj.as_str(), buf);
                encode_kind(kind, buf);
            }
            Message::DeltaRequest { sync, obj } => {
                buf.push(3);
                buf.extend_from_slice(&sync.to_be_bytes());
                encode_str(obj.as_str(), buf);
            }
            Message::DeltaReply { sync, obj, delta } => {
                buf.push(4);
                buf.extend_from_slice(&sync.to_be_bytes());
                encode_str(obj.as_str(), buf);
                buf.extend_from_slice(&delta.to_be_bytes());
            }
            Message::Install { sync, meta, apply } => {
                buf.push(5);
                buf.extend_from_slice(&sync.to_be_bytes());
                encode_meta(meta, buf);
                buf.push(u8::from(*apply));
            }
            Message::InstallAck { sync, obj } => {
                buf.push(6);
                buf.extend_from_slice(&sync.to_be_bytes());
                encode_str(obj.as_str(), buf);
            }
            Message::SyncDone {
                req,
                refilled,
                solver_micros,
                folded,
            } => {
                buf.push(7);
                buf.extend_from_slice(&req.to_be_bytes());
                buf.push(u8::from(*refilled));
                buf.extend_from_slice(&solver_micros.to_be_bytes());
                buf.push(u8::from(*folded));
            }
            Message::StateRequest => buf.push(8),
            Message::StateReply { counters, roster } => {
                buf.push(9);
                buf.extend_from_slice(&(counters.len() as u32).to_be_bytes());
                for meta in counters {
                    encode_meta(meta, buf);
                }
                encode_roster(roster, buf);
            }
            Message::Hello { peer, epoch } => {
                buf.push(10);
                buf.extend_from_slice(&peer.to_be_bytes());
                buf.extend_from_slice(&epoch.to_be_bytes());
            }
            Message::Seed { meta } => {
                buf.push(11);
                encode_meta(meta, buf);
            }
            Message::SeedAck { obj } => {
                buf.push(12);
                encode_str(obj.as_str(), buf);
            }
            Message::PollRequest => buf.push(13),
            Message::PollReply { outcomes } => {
                buf.push(14);
                buf.extend_from_slice(&(outcomes.len() as u32).to_be_bytes());
                for outcome in outcomes {
                    encode_outcome(outcome, buf);
                }
            }
            Message::SyncAllRequest => buf.push(15),
            Message::SyncAllReply { solver_micros } => {
                buf.push(16);
                buf.extend_from_slice(&solver_micros.to_be_bytes());
            }
            Message::StatsRequest => buf.push(17),
            Message::StatsReply { stats } => {
                buf.push(18);
                buf.extend_from_slice(&stats.local_commits.to_be_bytes());
                buf.extend_from_slice(&stats.synchronizations.to_be_bytes());
                buf.extend_from_slice(&stats.negotiations.to_be_bytes());
                buf.extend_from_slice(&stats.proactive_negotiations.to_be_bytes());
                buf.extend_from_slice(&stats.solver_micros_total.to_be_bytes());
            }
            Message::MetricsRequest => buf.push(19),
            Message::MetricsReply { text } => {
                buf.push(20);
                encode_str(text, buf);
            }
            Message::RegisterProgram { bundle } => {
                buf.push(21);
                encode_bundle(bundle, buf);
            }
            Message::ProgramAck { count } => {
                buf.push(22);
                buf.extend_from_slice(&count.to_be_bytes());
            }
            Message::ProgramSync { req, txn } => {
                buf.push(23);
                buf.extend_from_slice(&req.to_be_bytes());
                encode_opt_u64(txn, buf);
            }
            Message::ProgramCollect { sync } => {
                buf.push(24);
                buf.extend_from_slice(&sync.to_be_bytes());
            }
            Message::ProgramDeltas { sync, values } => {
                buf.push(25);
                buf.extend_from_slice(&sync.to_be_bytes());
                encode_pairs(values, buf);
            }
            Message::ProgramInstall {
                sync,
                txn,
                round,
                db,
            } => {
                buf.push(26);
                buf.extend_from_slice(&sync.to_be_bytes());
                encode_opt_u64(txn, buf);
                buf.extend_from_slice(&round.to_be_bytes());
                encode_pairs(db, buf);
            }
            Message::ProgramInstallAck { sync } => {
                buf.push(27);
                buf.extend_from_slice(&sync.to_be_bytes());
            }
            Message::JoinRequest {
                site,
                addr,
                expected_epoch,
            } => {
                buf.push(28);
                buf.extend_from_slice(&site.to_be_bytes());
                encode_str(addr, buf);
                encode_opt_u64(expected_epoch, buf);
            }
            Message::JoinAck {
                ok,
                roster,
                addrs,
                program,
            } => {
                buf.push(29);
                buf.push(u8::from(*ok));
                encode_roster(roster, buf);
                encode_strs(addrs, buf);
                match program {
                    None => buf.push(0),
                    Some((bundle, sites)) => {
                        buf.push(1);
                        encode_bundle(bundle, buf);
                        buf.extend_from_slice(&sites.to_be_bytes());
                    }
                }
            }
            Message::Leave { site } => {
                buf.push(30);
                buf.extend_from_slice(&site.to_be_bytes());
            }
            Message::MembershipInstall { roster, addrs } => {
                buf.push(31);
                encode_roster(roster, buf);
                encode_strs(addrs, buf);
            }
        }
    }

    fn decode_body(cursor: &mut Cursor<'_>) -> Option<Message> {
        Some(match cursor.u8()? {
            0 => {
                let count = cursor.u32()? as usize;
                let mut ops = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    ops.push(decode_op(cursor)?);
                }
                Message::Submit { ops }
            }
            1 => Message::Register {
                meta: decode_meta(cursor)?,
            },
            2 => Message::SyncRequest {
                origin: cursor.u64()?,
                req: cursor.u64()?,
                obj: ObjId::new(decode_str(cursor)?),
                kind: decode_kind(cursor)?,
            },
            3 => Message::DeltaRequest {
                sync: cursor.u64()?,
                obj: ObjId::new(decode_str(cursor)?),
            },
            4 => Message::DeltaReply {
                sync: cursor.u64()?,
                obj: ObjId::new(decode_str(cursor)?),
                delta: cursor.i64()?,
            },
            5 => Message::Install {
                sync: cursor.u64()?,
                meta: decode_meta(cursor)?,
                apply: match cursor.u8()? {
                    0 => false,
                    1 => true,
                    _ => return None,
                },
            },
            6 => Message::InstallAck {
                sync: cursor.u64()?,
                obj: ObjId::new(decode_str(cursor)?),
            },
            7 => Message::SyncDone {
                req: cursor.u64()?,
                refilled: cursor.u8()? != 0,
                solver_micros: cursor.u64()?,
                folded: cursor.u8()? != 0,
            },
            8 => Message::StateRequest,
            9 => {
                let count = cursor.u32()? as usize;
                let mut counters = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    counters.push(decode_meta(cursor)?);
                }
                Message::StateReply {
                    counters,
                    roster: decode_roster(cursor)?,
                }
            }
            10 => Message::Hello {
                peer: cursor.u64()?,
                epoch: cursor.u64()?,
            },
            11 => Message::Seed {
                meta: decode_meta(cursor)?,
            },
            12 => Message::SeedAck {
                obj: ObjId::new(decode_str(cursor)?),
            },
            13 => Message::PollRequest,
            14 => {
                let count = cursor.u32()? as usize;
                let mut outcomes = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    outcomes.push(decode_outcome(cursor)?);
                }
                Message::PollReply { outcomes }
            }
            15 => Message::SyncAllRequest,
            16 => Message::SyncAllReply {
                solver_micros: cursor.u64()?,
            },
            17 => Message::StatsRequest,
            18 => Message::StatsReply {
                stats: ReplicatedStats {
                    local_commits: cursor.u64()?,
                    synchronizations: cursor.u64()?,
                    negotiations: cursor.u64()?,
                    proactive_negotiations: cursor.u64()?,
                    solver_micros_total: cursor.u64()?,
                },
            },
            19 => Message::MetricsRequest,
            20 => Message::MetricsReply {
                text: decode_str(cursor)?,
            },
            21 => Message::RegisterProgram {
                bundle: decode_bundle(cursor)?,
            },
            22 => Message::ProgramAck {
                count: cursor.u64()?,
            },
            23 => Message::ProgramSync {
                req: cursor.u64()?,
                txn: decode_opt_u64(cursor)?,
            },
            24 => Message::ProgramCollect {
                sync: cursor.u64()?,
            },
            25 => Message::ProgramDeltas {
                sync: cursor.u64()?,
                values: decode_pairs(cursor)?,
            },
            26 => Message::ProgramInstall {
                sync: cursor.u64()?,
                txn: decode_opt_u64(cursor)?,
                round: cursor.u64()?,
                db: decode_pairs(cursor)?,
            },
            27 => Message::ProgramInstallAck {
                sync: cursor.u64()?,
            },
            28 => Message::JoinRequest {
                site: cursor.u64()?,
                addr: decode_str(cursor)?,
                expected_epoch: decode_opt_u64(cursor)?,
            },
            29 => Message::JoinAck {
                ok: match cursor.u8()? {
                    0 => false,
                    1 => true,
                    _ => return None,
                },
                roster: decode_roster(cursor)?,
                addrs: decode_strs(cursor)?,
                program: match cursor.u8()? {
                    0 => None,
                    1 => Some((decode_bundle(cursor)?, cursor.u64()?)),
                    _ => return None,
                },
            },
            30 => Message::Leave {
                site: cursor.u64()?,
            },
            31 => Message::MembershipInstall {
                roster: decode_roster(cursor)?,
                addrs: decode_strs(cursor)?,
            },
            _ => return None,
        })
    }
}

fn encode_outcome(outcome: &OpOutcome, buf: &mut Vec<u8>) {
    let flags = u8::from(outcome.committed)
        | (u8::from(outcome.synchronized) << 1)
        | (u8::from(outcome.refilled) << 2)
        | (u8::from(outcome.unsupported) << 3);
    buf.push(flags);
    buf.extend_from_slice(&outcome.comm_rounds.to_be_bytes());
    buf.extend_from_slice(&outcome.solver_micros.to_be_bytes());
}

fn decode_outcome(cursor: &mut Cursor<'_>) -> Option<OpOutcome> {
    let flags = cursor.u8()?;
    if flags > 0b1111 {
        return None;
    }
    Some(OpOutcome {
        committed: flags & 1 != 0,
        synchronized: flags & 2 != 0,
        refilled: flags & 4 != 0,
        unsupported: flags & 8 != 0,
        comm_rounds: cursor.u32()?,
        solver_micros: cursor.u64()?,
    })
}

fn encode_opt_u64(value: &Option<u64>, buf: &mut Vec<u8>) {
    match value {
        None => buf.push(0),
        Some(v) => {
            buf.push(1);
            buf.extend_from_slice(&v.to_be_bytes());
        }
    }
}

fn decode_opt_u64(cursor: &mut Cursor<'_>) -> Option<Option<u64>> {
    Some(match cursor.u8()? {
        0 => None,
        1 => Some(cursor.u64()?),
        _ => return None,
    })
}

fn encode_pairs(pairs: &[(ObjId, i64)], buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(pairs.len() as u32).to_be_bytes());
    for (obj, value) in pairs {
        encode_str(obj.as_str(), buf);
        buf.extend_from_slice(&value.to_be_bytes());
    }
}

fn decode_pairs(cursor: &mut Cursor<'_>) -> Option<Vec<(ObjId, i64)>> {
    let count = cursor.u32()? as usize;
    let mut pairs = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let obj = ObjId::new(decode_str(cursor)?);
        pairs.push((obj, cursor.i64()?));
    }
    Some(pairs)
}

fn encode_bundle(bundle: &ProgramBundle, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(bundle.sources.len() as u32).to_be_bytes());
    for source in &bundle.sources {
        encode_str(source, buf);
    }
    buf.extend_from_slice(&(bundle.loc_pairs.len() as u32).to_be_bytes());
    for (obj, site) in &bundle.loc_pairs {
        encode_str(obj.as_str(), buf);
        buf.extend_from_slice(&(*site as u64).to_be_bytes());
    }
    encode_opt_u64(&bundle.default_site.map(|s| s as u64), buf);
    buf.extend_from_slice(&(bundle.initial.len() as u32).to_be_bytes());
    for (obj, value) in &bundle.initial {
        encode_str(obj.as_str(), buf);
        buf.extend_from_slice(&value.to_be_bytes());
    }
    match &bundle.optimizer {
        None => buf.push(0),
        Some(cfg) => {
            buf.push(1);
            buf.extend_from_slice(&(cfg.lookahead as u64).to_be_bytes());
            buf.extend_from_slice(&(cfg.futures as u64).to_be_bytes());
            buf.extend_from_slice(&cfg.seed.to_be_bytes());
        }
    }
}

fn decode_bundle(cursor: &mut Cursor<'_>) -> Option<ProgramBundle> {
    let count = cursor.u32()? as usize;
    let mut sources = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        sources.push(decode_str(cursor)?);
    }
    let count = cursor.u32()? as usize;
    let mut loc_pairs = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let obj = ObjId::new(decode_str(cursor)?);
        loc_pairs.push((obj, cursor.u64()? as usize));
    }
    let default_site = decode_opt_u64(cursor)?.map(|s| s as usize);
    let count = cursor.u32()? as usize;
    let mut initial = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let obj = ObjId::new(decode_str(cursor)?);
        initial.push((obj, cursor.i64()?));
    }
    let optimizer = match cursor.u8()? {
        0 => None,
        1 => Some(OptimizerConfig {
            lookahead: cursor.u64()? as usize,
            futures: cursor.u64()? as usize,
            seed: cursor.u64()?,
        }),
        _ => return None,
    };
    Some(ProgramBundle {
        sources,
        loc_pairs,
        default_site,
        initial,
        optimizer,
    })
}

fn encode_op(op: &SiteOp, buf: &mut Vec<u8>) {
    match op {
        SiteOp::Order {
            obj,
            amount,
            refill_to,
        } => {
            buf.push(0);
            encode_str(obj.as_str(), buf);
            buf.extend_from_slice(&amount.to_be_bytes());
            match refill_to {
                None => buf.push(0),
                Some(r) => {
                    buf.push(1);
                    buf.extend_from_slice(&r.to_be_bytes());
                }
            }
        }
        SiteOp::Increment { obj, amount } => {
            buf.push(1);
            encode_str(obj.as_str(), buf);
            buf.extend_from_slice(&amount.to_be_bytes());
        }
        SiteOp::ForceSync { obj } => {
            buf.push(2);
            encode_str(obj.as_str(), buf);
        }
        SiteOp::Transaction { index } => {
            buf.push(3);
            buf.extend_from_slice(&(*index as u64).to_be_bytes());
        }
    }
}

fn decode_op(cursor: &mut Cursor<'_>) -> Option<SiteOp> {
    Some(match cursor.u8()? {
        0 => SiteOp::Order {
            obj: ObjId::new(decode_str(cursor)?),
            amount: cursor.i64()?,
            refill_to: match cursor.u8()? {
                0 => None,
                1 => Some(cursor.i64()?),
                _ => return None,
            },
        },
        1 => SiteOp::Increment {
            obj: ObjId::new(decode_str(cursor)?),
            amount: cursor.i64()?,
        },
        2 => SiteOp::ForceSync {
            obj: ObjId::new(decode_str(cursor)?),
        },
        3 => SiteOp::Transaction {
            index: cursor.u64()? as usize,
        },
        _ => return None,
    })
}

fn encode_kind(kind: &SyncKind, buf: &mut Vec<u8>) {
    match kind {
        SyncKind::Order { amount, refill_to } => {
            buf.push(0);
            buf.extend_from_slice(&amount.to_be_bytes());
            match refill_to {
                None => buf.push(0),
                Some(r) => {
                    buf.push(1);
                    buf.extend_from_slice(&r.to_be_bytes());
                }
            }
        }
        SyncKind::Pin => buf.push(1),
        SyncKind::Fold => buf.push(2),
        SyncKind::Proactive => buf.push(3),
        SyncKind::Handoff { members } => {
            buf.push(4);
            encode_members(members, buf);
        }
    }
}

fn decode_kind(cursor: &mut Cursor<'_>) -> Option<SyncKind> {
    Some(match cursor.u8()? {
        0 => SyncKind::Order {
            amount: cursor.i64()?,
            refill_to: match cursor.u8()? {
                0 => None,
                1 => Some(cursor.i64()?),
                _ => return None,
            },
        },
        1 => SyncKind::Pin,
        2 => SyncKind::Fold,
        3 => SyncKind::Proactive,
        4 => SyncKind::Handoff {
            members: decode_members(cursor)?,
        },
        _ => return None,
    })
}

fn encode_members(members: &[usize], buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(members.len() as u32).to_be_bytes());
    for m in members {
        buf.extend_from_slice(&(*m as u64).to_be_bytes());
    }
}

/// Member lists must arrive non-empty and strictly increasing — the worker
/// binary-searches them and indexes allowances by member position, so a
/// hostile or corrupted list is rejected at the codec.
fn decode_members(cursor: &mut Cursor<'_>) -> Option<Vec<usize>> {
    let count = cursor.u32()? as usize;
    if count == 0 {
        return None;
    }
    let mut members = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let m = cursor.u64()? as usize;
        if members.last().is_some_and(|last| *last >= m) {
            return None;
        }
        members.push(m);
    }
    Some(members)
}

fn encode_roster(roster: &Roster, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&roster.epoch.to_be_bytes());
    encode_members(&roster.members, buf);
}

fn decode_roster(cursor: &mut Cursor<'_>) -> Option<Roster> {
    Some(Roster {
        epoch: cursor.u64()?,
        members: decode_members(cursor)?,
    })
}

fn encode_strs(strs: &[String], buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(strs.len() as u32).to_be_bytes());
    for s in strs {
        encode_str(s, buf);
    }
}

fn decode_strs(cursor: &mut Cursor<'_>) -> Option<Vec<String>> {
    let count = cursor.u32()? as usize;
    let mut strs = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        strs.push(decode_str(cursor)?);
    }
    Some(strs)
}

fn encode_meta(meta: &CounterMeta, buf: &mut Vec<u8>) {
    encode_str(meta.obj.as_str(), buf);
    buf.extend_from_slice(&meta.base.to_be_bytes());
    buf.extend_from_slice(&meta.lower_bound.to_be_bytes());
    encode_members(&meta.members, buf);
    buf.extend_from_slice(&(meta.allowances.len() as u32).to_be_bytes());
    for a in &meta.allowances {
        buf.extend_from_slice(&a.to_be_bytes());
    }
}

fn decode_meta(cursor: &mut Cursor<'_>) -> Option<CounterMeta> {
    let obj = ObjId::new(decode_str(cursor)?);
    let base = cursor.i64()?;
    let lower_bound = cursor.i64()?;
    let members = decode_members(cursor)?;
    let count = cursor.u32()? as usize;
    // Allowances are indexed by member position; a length mismatch would
    // panic deep in the worker, so reject it at the codec.
    if count != members.len() {
        return None;
    }
    let mut allowances = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        allowances.push(cursor.i64()?);
    }
    Some(CounterMeta {
        obj,
        base,
        lower_bound,
        members,
        allowances,
    })
}

fn encode_str(s: &str, buf: &mut Vec<u8>) {
    let bytes = s.as_bytes();
    buf.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    buf.extend_from_slice(bytes);
}

fn decode_str(cursor: &mut Cursor<'_>) -> Option<String> {
    let len = cursor.u32()? as usize;
    String::from_utf8(cursor.take(len)?.to_vec()).ok()
}

/// A bounds-checked big-endian reader over a byte slice.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.data.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_be_bytes(s.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_be_bytes(s.try_into().expect("8 bytes")))
    }

    fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|s| i64::from_be_bytes(s.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> CounterMeta {
        CounterMeta {
            obj: ObjId::new("stock[7]"),
            base: 100,
            lower_bound: 1,
            members: vec![0, 1, 2],
            allowances: vec![-33, -33, 0],
        }
    }

    fn roster() -> Roster {
        Roster {
            epoch: 4,
            members: vec![0, 2, 3],
        }
    }

    fn exemplars() -> Vec<Message> {
        vec![
            Message::Submit {
                ops: vec![SiteOp::Order {
                    obj: ObjId::new("stock[0]"),
                    amount: 3,
                    refill_to: Some(99),
                }],
            },
            Message::Submit {
                ops: vec![
                    SiteOp::Order {
                        obj: ObjId::new("stock[1]"),
                        amount: 1,
                        refill_to: None,
                    },
                    SiteOp::Increment {
                        obj: ObjId::new("balance[2]"),
                        amount: -7,
                    },
                    SiteOp::ForceSync {
                        obj: ObjId::new("neworder[1]"),
                    },
                    SiteOp::Transaction { index: 5 },
                ],
            },
            Message::Submit { ops: Vec::new() },
            Message::Register { meta: meta() },
            Message::SyncRequest {
                origin: 1,
                req: 17,
                obj: ObjId::new("stock[7]"),
                kind: SyncKind::Order {
                    amount: 2,
                    refill_to: Some(40),
                },
            },
            Message::SyncRequest {
                origin: 0,
                req: 18,
                obj: ObjId::new("stock[7]"),
                kind: SyncKind::Pin,
            },
            Message::SyncRequest {
                origin: 2,
                req: 19,
                obj: ObjId::new("stock[7]"),
                kind: SyncKind::Fold,
            },
            Message::SyncRequest {
                origin: 2,
                req: 20,
                obj: ObjId::new("stock[7]"),
                kind: SyncKind::Proactive,
            },
            Message::SyncRequest {
                origin: 0,
                req: 21,
                obj: ObjId::new("stock[7]"),
                kind: SyncKind::Handoff {
                    members: vec![0, 1, 2, 3],
                },
            },
            Message::DeltaRequest {
                sync: 4,
                obj: ObjId::new("stock[7]"),
            },
            Message::DeltaReply {
                sync: 4,
                obj: ObjId::new("stock[7]"),
                delta: -12,
            },
            Message::Install {
                sync: 4,
                meta: meta(),
                apply: true,
            },
            Message::Install {
                sync: 5,
                meta: meta(),
                apply: false,
            },
            Message::InstallAck {
                sync: 4,
                obj: ObjId::new("stock[7]"),
            },
            Message::SyncDone {
                req: 17,
                refilled: true,
                solver_micros: 250,
                folded: true,
            },
            Message::StateRequest,
            Message::StateReply {
                counters: vec![meta(), meta()],
                roster: roster(),
            },
            Message::StateReply {
                counters: Vec::new(),
                roster: Roster::founding(2),
            },
            Message::Hello { peer: 2, epoch: 9 },
            Message::Hello {
                peer: CLIENT_PEER,
                epoch: 0,
            },
            Message::Seed { meta: meta() },
            Message::SeedAck {
                obj: ObjId::new("stock[7]"),
            },
            Message::PollRequest,
            Message::PollReply {
                outcomes: vec![
                    OpOutcome::local_commit(),
                    OpOutcome::synchronized(true, 77),
                    OpOutcome::default(),
                    OpOutcome::unsupported(),
                ],
            },
            Message::SyncAllRequest,
            Message::SyncAllReply { solver_micros: 12 },
            Message::StatsRequest,
            Message::StatsReply {
                stats: ReplicatedStats {
                    local_commits: 5,
                    synchronizations: 2,
                    negotiations: 3,
                    proactive_negotiations: 1,
                    solver_micros_total: 640,
                },
            },
            Message::MetricsRequest,
            Message::MetricsReply {
                text: "# TYPE homeo_local_commits_total counter\nhomeo_local_commits_total 5\n"
                    .to_string(),
            },
            Message::MetricsReply {
                text: String::new(),
            },
            Message::RegisterProgram {
                bundle: ProgramBundle {
                    sources: vec![
                        "txn order { qty := read(stock[1]); write(stock[1] = qty - 1); }"
                            .to_string(),
                    ],
                    loc_pairs: vec![(ObjId::new("stock[1]"), 0), (ObjId::new("stock[2]"), 1)],
                    default_site: Some(0),
                    initial: vec![(ObjId::new("stock[1]"), 100), (ObjId::new("stock[2]"), -3)],
                    optimizer: Some(OptimizerConfig {
                        lookahead: 20,
                        futures: 3,
                        seed: 7,
                    }),
                },
            },
            Message::RegisterProgram {
                bundle: ProgramBundle {
                    sources: Vec::new(),
                    loc_pairs: Vec::new(),
                    default_site: None,
                    initial: Vec::new(),
                    optimizer: None,
                },
            },
            Message::ProgramAck { count: 4 },
            Message::ProgramSync {
                req: 23,
                txn: Some(2),
            },
            Message::ProgramSync { req: 24, txn: None },
            Message::ProgramCollect { sync: 9 },
            Message::ProgramDeltas {
                sync: 9,
                values: vec![(ObjId::new("x"), 10), (ObjId::new("y"), -4)],
            },
            Message::ProgramDeltas {
                sync: 10,
                values: Vec::new(),
            },
            Message::ProgramInstall {
                sync: 9,
                txn: Some(2),
                round: 6,
                db: vec![(ObjId::new("x"), 9), (ObjId::new("y"), -4)],
            },
            Message::ProgramInstall {
                sync: 10,
                txn: None,
                round: 7,
                db: Vec::new(),
            },
            Message::ProgramInstallAck { sync: 9 },
            Message::JoinRequest {
                site: 3,
                addr: "127.0.0.1:7844".to_string(),
                expected_epoch: Some(4),
            },
            Message::JoinRequest {
                site: 5,
                addr: String::new(),
                expected_epoch: None,
            },
            Message::JoinAck {
                ok: true,
                roster: roster(),
                addrs: vec![
                    "127.0.0.1:7841".to_string(),
                    String::new(),
                    "127.0.0.1:7843".to_string(),
                    "127.0.0.1:7844".to_string(),
                ],
                program: Some((
                    ProgramBundle {
                        sources: vec!["txn t { x := read(a); write(a = x - 1); }".to_string()],
                        loc_pairs: vec![(ObjId::new("a"), 0)],
                        default_site: None,
                        initial: vec![(ObjId::new("a"), 10)],
                        optimizer: None,
                    },
                    3,
                )),
            },
            Message::JoinAck {
                ok: false,
                roster: Roster::founding(3),
                addrs: Vec::new(),
                program: None,
            },
            Message::Leave { site: 1 },
            Message::MembershipInstall {
                roster: roster(),
                addrs: vec![String::new(), String::new(), String::new(), String::new()],
            },
        ]
    }

    #[test]
    fn hostile_member_lists_are_rejected() {
        // Unsorted or duplicated member lists and allowance/member length
        // mismatches must fail decode, not panic in the worker.
        let good = Message::MembershipInstall {
            roster: roster(),
            addrs: Vec::new(),
        }
        .encode();
        // The roster's members start at byte 4 (prefix) + 1 (tag) + 8
        // (epoch) + 4 (count); flip the first two member ids out of order.
        let mut unsorted = good.clone();
        unsorted[4 + 1 + 8 + 4 + 7] = 9; // members become [9, 2, 3]
        assert_eq!(Message::decode(&unsorted), Err(CodecError::Malformed));
        let mut duplicated = good;
        duplicated[4 + 1 + 8 + 4 + 15] = 0; // members become [0, 0, 3]
        assert_eq!(Message::decode(&duplicated), Err(CodecError::Malformed));
        let mut mismatched = meta();
        mismatched.allowances.pop();
        let frame = Message::Register { meta: mismatched }.encode();
        assert_eq!(Message::decode(&frame), Err(CodecError::Malformed));
    }

    #[test]
    fn every_variant_round_trips() {
        for msg in exemplars() {
            let frame = msg.encode();
            let decoded = Message::decode(&frame).unwrap_or_else(|e| panic!("decode {msg:?}: {e}"));
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn encode_into_reuses_the_scratch_and_matches_encode() {
        let mut scratch = Vec::new();
        for msg in exemplars() {
            let frame = msg.encode_into(&mut scratch);
            assert_eq!(frame, msg.encode());
            assert_eq!(Message::decode(&frame), Ok(msg));
        }
        // The scratch retains its capacity across frames (that is the
        // point), and holds the last frame's bytes.
        assert!(scratch.capacity() > 0);
    }

    #[test]
    fn encode_submit_into_matches_the_owned_encoding() {
        let ops = vec![
            SiteOp::Order {
                obj: ObjId::new("stock[3]"),
                amount: 2,
                refill_to: None,
            },
            SiteOp::Transaction { index: 1 },
        ];
        let mut scratch = Vec::new();
        let frame = Message::encode_submit_into(&ops, &mut scratch);
        assert_eq!(frame, Message::Submit { ops }.encode());
        let empty = Message::encode_submit_into(&[], &mut scratch);
        assert_eq!(empty, Message::Submit { ops: Vec::new() }.encode());
    }

    #[test]
    fn frames_are_length_prefixed() {
        let frame = Message::StateRequest.encode();
        assert_eq!(frame.len(), 5);
        assert_eq!(u32::from_be_bytes(frame[..4].try_into().unwrap()), 1);
    }

    #[test]
    fn truncated_and_padded_frames_are_rejected() {
        for msg in exemplars() {
            let frame = msg.encode();
            for cut in 0..frame.len() {
                assert!(
                    Message::decode(&frame[..cut]).is_err(),
                    "truncation at {cut} of {msg:?} decoded"
                );
            }
            let mut padded = frame.clone();
            padded.push(0);
            assert_eq!(
                Message::decode(&padded),
                Err(CodecError::Malformed),
                "padding accepted"
            );
        }
        assert_eq!(Message::decode(&[]), Err(CodecError::Truncated));
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let frame = vec![0, 0, 0, 1, 99];
        assert_eq!(Message::decode(&frame), Err(CodecError::Malformed));
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_without_allocation() {
        // A hostile prefix claiming a 4 GiB body must fail before anything
        // is buffered against it — both on a complete slice and in the
        // streaming assembler (which only has the 4 prefix bytes).
        let mut frame = (u32::MAX).to_be_bytes().to_vec();
        frame.push(0);
        assert_eq!(
            Message::decode(&frame),
            Err(CodecError::Oversized {
                len: u32::MAX as usize
            })
        );
        let mut asm = FrameAssembler::new();
        asm.push(&(u32::MAX).to_be_bytes());
        assert_eq!(
            asm.next_message(),
            Err(CodecError::Oversized {
                len: u32::MAX as usize
            })
        );
    }

    #[test]
    fn assembler_reassembles_frames_from_arbitrary_chunks() {
        // Concatenate every exemplar frame into one byte stream, then feed
        // it to the assembler split at seeded random boundaries — including
        // splits inside length prefixes — and check the exact message
        // sequence comes back out, for many different tearings.
        let msgs = exemplars();
        let stream: Vec<u8> = msgs.iter().flat_map(Message::encode).collect();
        let mut rng = homeo_sim::DetRng::seed_from(0x7EA5);
        for _ in 0..200 {
            let mut asm = FrameAssembler::new();
            let mut decoded = Vec::new();
            let mut pos = 0;
            while pos < stream.len() {
                let take = 1 + rng.index(17.min(stream.len() - pos));
                asm.push(&stream[pos..pos + take]);
                pos += take;
                while let Some(msg) = asm.next_message().expect("well-formed stream") {
                    decoded.push(msg);
                }
            }
            assert_eq!(decoded, msgs);
            assert_eq!(asm.pending(), 0);
        }
    }

    #[test]
    fn assembler_surfaces_garbage_as_a_codec_error() {
        // A stream that frames correctly but carries a bogus body errors at
        // the message layer; the caller closes the connection.
        let mut asm = FrameAssembler::new();
        asm.push(&[0, 0, 0, 2, 99, 99]);
        assert_eq!(asm.next_message(), Err(CodecError::Malformed));
    }
}
