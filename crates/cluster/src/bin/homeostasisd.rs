//! `homeostasisd` — run one site (or all sites) of a homeostasis cluster
//! over real TCP sockets.
//!
//! ```text
//! homeostasisd --config PATH [--site N | --site all]
//! ```
//!
//! The config file names every site's listen address and the shared
//! negotiation mode (see `homeo_cluster::ClusterSpec` for the format):
//!
//! ```text
//! sites = 3
//! site.0 = 127.0.0.1:7841
//! site.1 = 127.0.0.1:7842
//! site.2 = 127.0.0.1:7843
//! mode = even-split
//! ```
//!
//! Start one process per site (`--site N`) for a real multi-process
//! deployment, or one process hosting every site (`--site all`, the
//! default) for a single-machine playground. Counters are registered by
//! clients over the wire (`Seed` frames — what `reproduce --homeo-load`
//! and `reproduce cluster-tcp` do), so a freshly started cluster is empty
//! and ready.
//!
//! **Joining a live cluster**: add the new site's `site.N` line plus a
//! `join = HOST:PORT` stanza naming any live member (and optionally
//! `epoch = N`, the roster epoch you observed) to a copy of the config,
//! then start only the new daemon with `--site N`. The running daemons
//! need no restart — the joiner receives the registered counters and
//! program source over the wire and the allowances are re-split across
//! the grown member set.
//!
//! Exit codes: `2` on usage/config errors, `1` when a socket cannot be
//! bound. The daemon runs until killed.

use std::process::exit;

use homeo_cluster::{spawn_cluster, ClusterConfig, ClusterSpec, NodeOptions, SiteNode};

fn usage() -> ! {
    eprintln!("usage: homeostasisd --config PATH [--site N | --site all]");
    exit(2);
}

fn main() {
    let mut config_path: Option<String> = None;
    let mut site_arg: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => config_path = Some(args.next().unwrap_or_else(|| usage())),
            "--site" => site_arg = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => {
                println!("usage: homeostasisd --config PATH [--site N | --site all]");
                return;
            }
            _ => usage(),
        }
    }
    let Some(config_path) = config_path else {
        usage()
    };
    let text = match std::fs::read_to_string(&config_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("homeostasisd: cannot read {config_path}: {e}");
            exit(2);
        }
    };
    let spec = match ClusterSpec::parse(&text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("homeostasisd: bad config {config_path}: {e}");
            exit(2);
        }
    };
    let config = ClusterConfig::new(spec.mode);
    // Thousands of client connections per site need file descriptors;
    // best-effort — on failure the inherited limit stands.
    let _ = epoll::raise_nofile_limit();
    let contact = spec.join_contact().expect("validated at parse");
    let nodes: Vec<SiteNode> = match site_arg.as_deref() {
        None | Some("all") => {
            if contact.is_some() {
                eprintln!("homeostasisd: a `join =` config starts one joining site; pass --site N");
                exit(2);
            }
            match spawn_cluster(&spec, config) {
                Ok(nodes) => nodes,
                Err(e) => {
                    eprintln!("homeostasisd: cannot bind cluster sockets: {e}");
                    exit(1);
                }
            }
        }
        Some(n) => {
            let site: usize = match n.parse() {
                Ok(site) if site < spec.sites() => site,
                _ => {
                    eprintln!(
                        "homeostasisd: --site must be `all` or 0..{} (got `{n}`)",
                        spec.sites()
                    );
                    exit(2);
                }
            };
            let mut opts = NodeOptions::new(site, spec.addrs.clone(), config);
            if let Some(contact) = contact {
                if contact == site {
                    eprintln!("homeostasisd: site {site} cannot join through itself");
                    exit(2);
                }
                opts = opts.with_join(contact, spec.epoch);
            }
            match SiteNode::bind(opts) {
                Ok(node) => vec![node],
                Err(e) => {
                    eprintln!(
                        "homeostasisd: cannot bind site {site} on {}: {e}",
                        spec.addrs[site]
                    );
                    exit(1);
                }
            }
        }
    };
    for node in &nodes {
        println!(
            "homeostasisd: site {} listening on {}",
            node.site(),
            node.addr()
        );
    }
    // Serve until killed; all the work happens on the nodes' threads.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(60));
    }
}
