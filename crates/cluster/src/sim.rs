//! The deterministic backend: the same [`SiteWorker`]s as the threaded
//! cluster, pumped by a virtual-clock scheduler whose network is a seeded
//! fault injector.
//!
//! [`SimTransport`] models a reliable transport (TCP-like) over a lossy
//! network parameterised by an [`RttMatrix`]:
//!
//! * **delay** — every site-to-site frame takes `one_way(from, to)` plus
//!   seeded jitter;
//! * **reordering** — jitter plus an explicit reorder chance lets later
//!   frames overtake earlier ones across pairs (the protocol's per-round
//!   ack barrier keeps this safe);
//! * **drops** — a dropped frame is retransmitted by the transport: it
//!   surfaces as one extra RTT of delay per lost attempt, never as loss;
//! * **partitions** — frames between partitioned sites are held in arrival
//!   order and released when the pair heals (local execution continues
//!   meanwhile — the homeostasis selling point: sites keep committing
//!   within their treaties while the network is down);
//! * **kill / restart** — a killed site loses all volatile state; frames
//!   addressed to it are held. [`SimCluster::restart`] reopens the engine
//!   from the WAL frame captured at the kill
//!   ([`homeo_store::Engine::reopen_from_frame`]), refetches treaty
//!   metadata from a live peer, and then replays the held frames.
//!
//! Every choice flows through one seeded [`DetRng`] and one event heap
//! ordered by `(virtual time, sequence number)`, so a run is byte-for-byte
//! reproducible from its configuration.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};
use std::sync::Arc;

use homeo_lang::ids::ObjId;
use homeo_protocol::{
    negotiate_allowances_cached, NegotiationCache, ProgramBundle, ProgramSet, ReplicatedStats,
};
use homeo_runtime::{OpOutcome, SiteOp, SiteRuntime};
use homeo_sim::clock::SimTime;
use homeo_sim::{DetRng, RttMatrix};
use homeo_store::Engine;

use crate::msg::{CounterMeta, Message};
use crate::transport::{Transport, CLIENT};
use crate::worker::SiteWorker;
use crate::ClusterConfig;

/// Retransmission attempts the reliable transport models before it delivers
/// a frame regardless (bounds the delay a drop chain can add).
const MAX_RETRANSMITS: u32 = 8;

/// The network fault model of a [`SimCluster`].
#[derive(Debug, Clone)]
pub struct SimNetConfig {
    /// Per-pair round-trip times (frames take `one_way` each hop).
    pub rtt: RttMatrix,
    /// Uniform extra delay in `[0, jitter_us]` microseconds per frame.
    pub jitter_us: u64,
    /// Chance that a frame is dropped and retransmitted (each lost attempt
    /// adds one RTT of delay; capped at 8 attempts).
    pub drop_chance: f64,
    /// Chance that a frame is held back one extra one-way delay, letting
    /// later frames overtake it.
    pub reorder_chance: f64,
    /// Seed for every network decision.
    pub seed: u64,
}

impl SimNetConfig {
    /// A fault-free network with uniform `rtt_ms` between distinct sites.
    pub fn reliable(sites: usize, rtt_ms: u64) -> Self {
        SimNetConfig {
            rtt: RttMatrix::uniform(sites, rtt_ms),
            jitter_us: 0,
            drop_chance: 0.0,
            reorder_chance: 0.0,
            seed: 0,
        }
    }

    /// A lossy, jittery, reordering network over `rtt` (the standard
    /// stress-test setting).
    pub fn faulty(rtt: RttMatrix, seed: u64) -> Self {
        SimNetConfig {
            rtt,
            jitter_us: 20_000,
            drop_chance: 0.05,
            reorder_chance: 0.10,
            seed,
        }
    }
}

/// One scheduled frame delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    time: SimTime,
    seq: u64,
    from: usize,
    to: usize,
    frame: Vec<u8>,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The deterministic fault-injecting transport: owns the virtual clock, the
/// event heap, the seeded RNG and the fault state (partitions, down sites).
pub struct SimTransport {
    config: SimNetConfig,
    rng: DetRng,
    clock: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<Event>>,
    /// Normalized `(min, max)` pairs that cannot currently exchange frames.
    partitioned: BTreeSet<(usize, usize)>,
    /// Frames caught by a partition, in arrival order.
    partition_held: VecDeque<(usize, usize, Vec<u8>)>,
    /// Per-site down flag; frames to a down site are held.
    down: Vec<bool>,
    /// Frames addressed to a down site, in arrival order.
    down_held: Vec<VecDeque<(usize, Vec<u8>)>>,
    /// Metrics.
    frames_sent: u64,
    frames_delivered: u64,
    frames_retransmitted: u64,
}

impl SimTransport {
    fn new(sites: usize, config: SimNetConfig) -> Self {
        // `>=`, not `==`: an elastic run builds the matrix over the maximum
        // site count it will ever grow to and starts with fewer workers.
        assert!(
            config.rtt.sites() >= sites,
            "RTT matrix must cover all sites"
        );
        let rng = DetRng::seed_from(config.seed);
        SimTransport {
            config,
            rng,
            clock: 0,
            seq: 0,
            events: BinaryHeap::new(),
            partitioned: BTreeSet::new(),
            partition_held: VecDeque::new(),
            down: vec![false; sites],
            down_held: (0..sites).map(|_| VecDeque::new()).collect(),
            frames_sent: 0,
            frames_delivered: 0,
            frames_retransmitted: 0,
        }
    }

    fn push(&mut self, time: SimTime, from: usize, to: usize, frame: Vec<u8>) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Event {
            time,
            seq,
            from,
            to,
            frame,
        }));
    }

    /// The next deliverable frame, advancing the clock. Frames whose
    /// destination is down or whose pair is partitioned are parked at
    /// delivery time (they were "on the wire" when the fault hit).
    fn next_delivery(&mut self) -> Option<(usize, usize, Vec<u8>)> {
        while let Some(Reverse(event)) = self.events.pop() {
            self.clock = self.clock.max(event.time);
            if self.down[event.to] {
                self.down_held[event.to].push_back((event.from, event.frame));
                continue;
            }
            if event.from != CLIENT && event.from != event.to {
                let pair = normalize(event.from, event.to);
                if self.partitioned.contains(&pair) {
                    self.partition_held
                        .push_back((event.from, event.to, event.frame));
                    continue;
                }
            }
            self.frames_delivered += 1;
            return Some((event.from, event.to, event.frame));
        }
        None
    }

    fn delay(&mut self, from: usize, to: usize) -> SimTime {
        if from == CLIENT || from == to {
            return 0; // the client attachment and self-sends are local
        }
        let mut delay = self.config.rtt.one_way(from, to);
        if self.config.jitter_us > 0 {
            delay += self.rng.int_inclusive(0, self.config.jitter_us as i64) as u64;
        }
        if self.config.reorder_chance > 0.0 && self.rng.chance(self.config.reorder_chance) {
            delay += self.config.rtt.one_way(from, to);
        }
        if self.config.drop_chance > 0.0 {
            let mut attempts = 0;
            while attempts < MAX_RETRANSMITS && self.rng.chance(self.config.drop_chance) {
                delay += self.config.rtt.rtt(from, to).max(1);
                self.frames_retransmitted += 1;
                attempts += 1;
            }
        }
        delay
    }
}

impl Transport for SimTransport {
    fn send(&mut self, from: usize, to: usize, frame: Vec<u8>) {
        if to >= self.down.len() {
            // Client-addressed acks (e.g. `ProgramAck`): the sim's client
            // attachment reads worker state directly, so these have no
            // receiver and are dropped.
            return;
        }
        self.frames_sent += 1;
        let delay = self.delay(from, to);
        self.push(self.clock + delay, from, to, frame);
    }
}

fn normalize(a: usize, b: usize) -> (usize, usize) {
    (a.min(b), a.max(b))
}

/// Deterministic end-of-run metrics (the "same seed ⇒ identical run"
/// witness).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimMetrics {
    /// Final virtual time, in microseconds.
    pub clock: SimTime,
    /// Frames handed to the transport.
    pub frames_sent: u64,
    /// Frames delivered to a worker.
    pub frames_delivered: u64,
    /// Retransmission events the drop model charged.
    pub frames_retransmitted: u64,
    /// Aggregate protocol statistics across all sites.
    pub stats: ReplicatedStats,
}

/// A cluster of [`SiteWorker`]s scheduled deterministically over a
/// [`SimTransport`]. Implements [`SiteRuntime`]; the fault surface
/// ([`SimCluster::partition`], [`SimCluster::kill`], …) sits alongside it.
pub struct SimCluster {
    workers: Vec<SiteWorker>,
    transport: SimTransport,
    config: ClusterConfig,
    registered: BTreeSet<ObjId>,
    registration_negotiations: u64,
    /// Solver time spent by the registration path, in microseconds.
    registration_solver_micros: u64,
    /// Memoized treaty templates + solver scratch for the registration
    /// path's negotiations.
    registration_cache: NegotiationCache,
    /// WAL frames captured at kill time, consumed by restart.
    wal_frames: Vec<Option<Vec<u8>>>,
    /// Per-cluster frame-encode scratch ([`Message::encode_into`]): reused
    /// across every frame the scheduler ships.
    scratch: Vec<u8>,
}

impl SimCluster {
    /// Builds the cluster over fresh engines.
    pub fn new(sites: usize, config: ClusterConfig, net: SimNetConfig) -> Self {
        assert!(sites > 0);
        Self::from_engines((0..sites).map(|_| Engine::new()).collect(), config, net)
    }

    /// Builds the cluster over pre-populated engines.
    pub fn from_engines(engines: Vec<Engine>, config: ClusterConfig, net: SimNetConfig) -> Self {
        assert!(!engines.is_empty());
        let sites = engines.len();
        let hints = config.hints(sites);
        let workers = engines
            .into_iter()
            .enumerate()
            .map(|(site, engine)| {
                SiteWorker::new(
                    site,
                    sites,
                    config.mode,
                    hints.clone(),
                    config.timer,
                    Arc::new(engine),
                )
                .with_tuning(config.tuning)
            })
            .collect();
        SimCluster {
            workers,
            transport: SimTransport::new(sites, net),
            config,
            registered: BTreeSet::new(),
            registration_negotiations: 0,
            registration_solver_micros: 0,
            registration_cache: NegotiationCache::new(),
            wal_frames: vec![None; sites],
            scratch: Vec::new(),
        }
    }

    /// Registers a counter on every site (initial value WAL-logged through
    /// each engine, treaty negotiated once, metadata installed everywhere).
    /// Returns the solver time in microseconds.
    pub fn register(&mut self, obj: ObjId, initial: i64, lower_bound: i64) -> u64 {
        if !self.registered.insert(obj.clone()) {
            return 0;
        }
        let members = self.committed_roster().members.clone();
        let (allowances, solver_micros) = negotiate_allowances_cached(
            self.config.mode,
            &self.config.hints(members.len()),
            members.len(),
            initial,
            lower_bound,
            self.config.timer,
            &mut self.registration_cache,
            None,
        );
        self.registration_negotiations += 1;
        self.registration_solver_micros += solver_micros;
        for worker in &mut self.workers {
            worker
                .engine()
                .write_logged(obj.as_str(), initial)
                .expect("population write cannot conflict");
            worker.install_counter(CounterMeta {
                obj: obj.clone(),
                base: initial,
                lower_bound,
                members: members.clone(),
                allowances: allowances.clone(),
            });
        }
        solver_micros
    }

    /// The roster as held by the lowest live worker — the committed
    /// membership when the cluster is quiescent.
    fn committed_roster(&self) -> &homeo_protocol::Roster {
        let live = (0..self.workers.len())
            .find(|&site| !self.transport.down[site])
            .expect("at least one live site");
        self.workers[live].roster()
    }

    /// Registers a general-transaction program bundle on every site: the
    /// source text is delivered to each worker, which parses, analyzes and
    /// negotiates its own (deterministic, identical) treaty table. Frames
    /// to a down site are held and replayed at restart, like any client
    /// frame. Returns the number of registered transactions (0 if the
    /// bundle is malformed, in which case nothing is delivered).
    pub fn register_program(&mut self, bundle: &ProgramBundle) -> u64 {
        let sites = self.workers.len();
        {
            // The general protocol's rounds run over a dense `0..n` site
            // universe; a cluster that has retired a low-numbered site must
            // not take new program registrations.
            let roster = self.committed_roster();
            if roster.members != (0..roster.len()).collect::<Vec<_>>() {
                return 0;
            }
        }
        let count = match ProgramSet::from_bundle(bundle, sites) {
            Ok(set) => set.len() as u64,
            Err(_) => return 0,
        };
        let clock = self.transport.clock;
        let frame = Message::RegisterProgram {
            bundle: bundle.clone(),
        }
        .encode();
        for site in 0..sites {
            self.transport.push(clock, CLIENT, site, frame.clone());
        }
        self.run_until_quiescent();
        count
    }

    /// True when the counter has been registered.
    pub fn is_registered(&self, obj: &ObjId) -> bool {
        self.registered.contains(obj)
    }

    /// Delivers frames until nothing deliverable remains (frames held by
    /// partitions or down sites stay parked). Returns the number of frames
    /// delivered.
    pub fn run_until_quiescent(&mut self) -> u64 {
        let mut delivered = 0;
        while let Some((from, to, frame)) = self.transport.next_delivery() {
            let msg = Message::decode(&frame).expect("malformed frame on the wire");
            let mut out = Vec::new();
            self.workers[to].handle(from, msg, &mut out);
            for (dest, msg) in out {
                self.transport
                    .send(to, dest, msg.encode_into(&mut self.scratch));
            }
            delivered += 1;
        }
        delivered
    }

    /// The current virtual time, in microseconds.
    pub fn clock(&self) -> SimTime {
        self.transport.clock
    }

    /// Cuts the (symmetric) link between two sites. Frames already in
    /// flight on that link are parked at delivery time.
    pub fn partition(&mut self, a: usize, b: usize) {
        assert_ne!(a, b);
        self.transport.partitioned.insert(normalize(a, b));
    }

    /// Heals the link between two sites: held frames re-enter the network
    /// (in held order, with fresh delivery delays).
    pub fn heal(&mut self, a: usize, b: usize) {
        self.transport.partitioned.remove(&normalize(a, b));
        self.release_partition_held();
    }

    /// Heals every partition.
    pub fn heal_all(&mut self) {
        self.transport.partitioned.clear();
        self.release_partition_held();
    }

    fn release_partition_held(&mut self) {
        let held: Vec<(usize, usize, Vec<u8>)> = self.transport.partition_held.drain(..).collect();
        for (from, to, frame) in held {
            if self.transport.partitioned.contains(&normalize(from, to)) {
                self.transport.partition_held.push_back((from, to, frame));
            } else {
                self.transport.send(from, to, frame);
            }
        }
    }

    /// Fail-stops a site: every volatile structure dies with it and frames
    /// addressed to it are held until [`SimCluster::restart`]. The WAL
    /// frame an on-disk log writer would hold is captured here and replayed
    /// at restart.
    ///
    /// # Panics
    /// Panics if the site is already down, if it is the last site up, or if
    /// it is inside an active synchronization round — as its coordinator
    /// *or* as a frozen participant whose delta the round will rebase. The
    /// crash model is fail-stop *between* coordination rounds; drive the
    /// cluster to quiescence (e.g. `run_until_quiescent`) before killing.
    pub fn kill(&mut self, site: usize) {
        assert!(!self.transport.down[site], "site {site} is already down");
        assert!(
            self.transport.down.iter().filter(|d| !**d).count() > 1,
            "cannot kill the last live site (recovery needs a live peer)"
        );
        assert!(
            self.workers[site].quiescent_coordinator(),
            "site {site} coordinates an active synchronization round; the fault \
             model is fail-stop between rounds — run to quiescence before killing"
        );
        assert!(
            self.workers[site].quiescent_participant(),
            "site {site} is frozen inside a peer-coordinated round (its delta is \
             being folded); killing it here could let the round's install land \
             after recovery and erase a post-restart commit — run to quiescence \
             before killing"
        );
        self.wal_frames[site] = Some(self.workers[site].engine().wal_frame());
        self.transport.down[site] = true;
    }

    /// True when the site is currently down.
    pub fn is_down(&self, site: usize) -> bool {
        self.transport.down[site]
    }

    /// Restarts a killed site: the engine is reopened from the WAL frame
    /// captured at the kill, held frames are released (they were on the
    /// wire), and the worker refetches treaty metadata from the lowest live
    /// peer before serving anything else.
    pub fn restart(&mut self, site: usize) {
        assert!(self.transport.down[site], "site {site} is not down");
        let frame = self.wal_frames[site]
            .take()
            .expect("kill captured a WAL frame");
        let engine = Engine::reopen_from_frame(&frame).expect("the WAL frame was captured intact");
        self.transport.down[site] = false;
        // Frames held while the site was down were already on the wire:
        // they re-enter at the current instant, ahead of the state
        // transfer's round trip, so recovery replays them in order.
        let held: Vec<(usize, Vec<u8>)> = self.transport.down_held[site].drain(..).collect();
        let clock = self.transport.clock;
        for (from, frame) in held {
            self.transport.push(clock, from, site, frame);
        }
        // The recovery buddy must be a fellow *member* (per the restarting
        // site's pre-crash roster): a retired site's treaty metadata is
        // stale by design and must not seed a recovery. The buddy's
        // `StateReply` carries the current roster, so a membership change
        // that committed while this site was down is adopted on recovery.
        let roster = self.workers[site].roster().clone();
        let buddy = roster
            .members
            .iter()
            .copied()
            .find(|&peer| peer != site && !self.transport.down[peer])
            .expect("at least one live member peer");
        let mut out = Vec::new();
        self.workers[site].crash_restart(Arc::new(engine), buddy, &mut out);
        for (dest, msg) in out {
            self.transport
                .send(site, dest, msg.encode_into(&mut self.scratch));
        }
    }

    /// Starts a join of a fresh site without driving it to completion: the
    /// new worker's `JoinRequest` enters the network and the scheduler is
    /// *not* run, so faults (partitions, kills) can be injected while the
    /// membership change is in flight. Returns the new site id.
    ///
    /// The cluster's RTT matrix must already cover the new site — build the
    /// `SimNetConfig` over the maximum site count the run will grow to.
    pub fn begin_join(&mut self) -> usize {
        let site = self.workers.len();
        assert!(
            site < self.transport.config.rtt.sites(),
            "RTT matrix has no row for joining site {site}; build the net config \
             over the maximum site count"
        );
        let contact = self.committed_roster().leader();
        let expected_amount = self.config.hints(1).expected_amount;
        let mut worker = SiteWorker::new_joining(
            site,
            self.config.mode,
            expected_amount,
            self.config.timer,
            Arc::new(Engine::new()),
        )
        .with_tuning(self.config.tuning);
        self.transport.down.push(false);
        self.transport.down_held.push(VecDeque::new());
        self.wal_frames.push(None);
        let mut out = Vec::new();
        worker.begin_join(contact, "", None, &mut out);
        self.workers.push(worker);
        for (dest, msg) in out {
            self.transport
                .send(site, dest, msg.encode_into(&mut self.scratch));
        }
        site
    }

    /// Joins a fresh site and drives the membership change to completion:
    /// every registered counter is handed off to the grown member set and
    /// the epoch-bumped roster is committed everywhere. Returns the new
    /// site id.
    pub fn join(&mut self) -> usize {
        let site = self.begin_join();
        self.run_until_quiescent();
        assert!(
            self.workers[site].roster().contains(site) && !self.workers[site].joining(),
            "join of site {site} did not commit — a partition or down site is \
             blocking the handoff"
        );
        site
    }

    /// Starts retiring a member site without driving it to completion (see
    /// [`SimCluster::begin_join`] for why). The `Leave` frame enters the
    /// network addressed to a surviving member.
    pub fn begin_leave(&mut self, site: usize) {
        let roster = self.committed_roster();
        assert!(roster.contains(site), "site {site} is not a member");
        assert!(roster.len() > 1, "cannot retire the last member");
        let watch = roster
            .members
            .iter()
            .copied()
            .find(|&m| m != site && !self.transport.down[m])
            .expect("a live surviving member");
        let clock = self.transport.clock;
        let frame = Message::Leave { site: site as u64 }.encode();
        self.transport.push(clock, CLIENT, watch, frame);
    }

    /// Retires a member site and drives the membership change to
    /// completion: its shards are handed off (unsynchronized deltas folded
    /// into the survivors' bases) and the epoch-bumped roster evicts it.
    /// The retired worker stays constructed — it completes client
    /// operations as uncommitted no-ops.
    pub fn leave(&mut self, site: usize) {
        self.begin_leave(site);
        self.run_until_quiescent();
        assert!(
            !self.committed_roster().contains(site),
            "leave of site {site} did not commit — a partition or down site is \
             blocking the handoff"
        );
    }

    /// The membership roster `site` currently holds.
    pub fn roster(&self, site: usize) -> &homeo_protocol::Roster {
        self.workers[site].roster()
    }

    /// Total stale-epoch frames dropped across every site: frames from a
    /// member evicted by a committed roster carry treaty state from a dead
    /// epoch and are rejected on receipt (only a rejoin `JoinRequest`
    /// passes). Exposed so the stress tests can assert the rejection
    /// actually fired.
    pub fn stale_rejects(&self) -> u64 {
        self.workers.iter().map(|w| w.stale_rejects).sum()
    }

    /// The authoritative (global) value of a counter: the coordinator's
    /// base plus every *member* site's unsynchronized delta. Meaningful
    /// when no round is mid-flight on the counter (run to quiescence
    /// first). Non-members (retired sites, mid-join sites) hold stale
    /// engine values on purpose — their deltas were folded into the base at
    /// handoff — so they are excluded from the sum.
    pub fn logical_value(&self, obj: &ObjId) -> i64 {
        let live = (0..self.workers.len())
            .find(|&site| !self.transport.down[site])
            .expect("at least one live site");
        let coordinator = self.workers[live].coordinator(obj);
        let Some(base) = self.workers[coordinator].counter_base(obj) else {
            return 0;
        };
        let members = self.workers[coordinator]
            .counter_members(obj)
            .expect("coordinator knows its counter");
        base + members
            .iter()
            .map(|&m| self.workers[m].engine().peek(obj.as_str()) - base)
            .sum::<i64>()
    }

    /// Aggregate statistics across every site plus the registration path.
    pub fn stats(&self) -> ReplicatedStats {
        let mut total = ReplicatedStats {
            negotiations: self.registration_negotiations,
            solver_micros_total: self.registration_solver_micros,
            ..ReplicatedStats::default()
        };
        for worker in &self.workers {
            total.local_commits += worker.stats.local_commits;
            total.synchronizations += worker.stats.synchronizations;
            total.negotiations += worker.stats.negotiations;
            total.proactive_negotiations += worker.stats.proactive_negotiations;
            total.solver_micros_total += worker.stats.solver_micros_total;
        }
        total
    }

    /// Every site worker's rendered telemetry dump (Prometheus-style
    /// text), in site order. Under [`homeo_sim::Timer::fixed_zero`] the recorded
    /// durations are the timer's constant, so seeded runs dump
    /// byte-identical text.
    pub fn metrics_text(&self) -> Vec<String> {
        self.workers.iter().map(|w| w.metrics_text()).collect()
    }

    /// The deterministic end-of-run metrics.
    pub fn metrics(&self) -> SimMetrics {
        SimMetrics {
            clock: self.transport.clock,
            frames_sent: self.transport.frames_sent,
            frames_delivered: self.transport.frames_delivered,
            frames_retransmitted: self.transport.frames_retransmitted,
            stats: self.stats(),
        }
    }
}

impl SiteRuntime for SimCluster {
    fn sites(&self) -> usize {
        self.workers.len()
    }

    fn engine(&self, site: usize) -> &Engine {
        self.workers[site].engine()
    }

    fn submit(&mut self, site: usize, op: SiteOp) {
        let clock = self.transport.clock;
        let frame = Message::encode_submit_into(std::slice::from_ref(&op), &mut self.scratch);
        self.transport.push(clock, CLIENT, site, frame);
    }

    fn poll(&mut self, site: usize) -> Vec<OpOutcome> {
        self.run_until_quiescent();
        self.workers[site].take_completed()
    }

    /// The batched path: one `Submit` frame (encoded straight from the
    /// borrowed slice) carries the whole batch into the site's scheduling
    /// round, then the scheduler runs to quiescence and the outcomes are
    /// drained.
    fn submit_batch(&mut self, site: usize, ops: &[SiteOp]) -> Vec<OpOutcome> {
        if ops.is_empty() {
            return Vec::new();
        }
        let clock = self.transport.clock;
        let frame = Message::encode_submit_into(ops, &mut self.scratch);
        self.transport.push(clock, CLIENT, site, frame);
        self.poll(site)
    }

    fn synchronize(&mut self, site: usize) -> u64 {
        let mut out = Vec::new();
        self.workers[site].begin_full_sync(&mut out);
        for (dest, msg) in out {
            self.transport
                .send(site, dest, msg.encode_into(&mut self.scratch));
        }
        self.run_until_quiescent();
        self.workers[site].take_full_sync_result().expect(
            "synchronize() stalled: a partition or down site is blocking the fold — \
             heal/restart before synchronizing",
        )
    }

    fn ensure_registered(&mut self, obj: &ObjId, initial: i64, lower_bound: i64) {
        if !self.is_registered(obj) {
            self.register(obj.clone(), initial, lower_bound);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_protocol::{OptimizerConfig, ReplicatedMode};
    use homeo_sim::Timer;

    fn stock(i: usize) -> ObjId {
        ObjId::new(format!("stock[{i}]"))
    }

    fn homeo_config() -> ClusterConfig {
        ClusterConfig::new(ReplicatedMode::Homeostasis {
            optimizer: Some(OptimizerConfig {
                lookahead: 10,
                futures: 2,
                seed: 21,
            }),
        })
        .with_timer(Timer::fixed_zero())
    }

    fn sim(sites: usize, net: SimNetConfig) -> SimCluster {
        SimCluster::new(sites, homeo_config(), net)
    }

    #[test]
    fn a_reliable_sim_matches_the_serial_oracle() {
        let mut cluster = sim(3, SimNetConfig::reliable(3, 100));
        cluster.register(stock(0), 12, 1);
        let refill = 20;
        let mut serial = 12i64;
        let mut rng = DetRng::seed_from(17);
        for _ in 0..200 {
            let site = rng.index(3);
            let out = cluster.execute(
                site,
                SiteOp::Order {
                    obj: stock(0),
                    amount: 1,
                    refill_to: Some(refill - 1),
                },
            );
            assert!(out.committed);
            serial = if serial > 1 { serial - 1 } else { refill - 1 };
            assert_eq!(cluster.logical_value(&stock(0)), serial);
        }
        assert!(cluster.clock() > 0, "syncs must advance virtual time");
    }

    #[test]
    fn faults_delay_but_never_lose_operations() {
        let net = SimNetConfig::faulty(RttMatrix::uniform(3, 120), 0xFA);
        let mut cluster = sim(3, net);
        cluster.register(stock(0), 10, 1);
        let mut committed = 0;
        for i in 0..60 {
            let out = cluster.execute(
                i % 3,
                SiteOp::Order {
                    obj: stock(0),
                    amount: 1,
                    refill_to: Some(9),
                },
            );
            if out.committed {
                committed += 1;
            }
        }
        assert_eq!(committed, 60, "the reliable transport never loses an op");
        let metrics = cluster.metrics();
        assert!(metrics.frames_retransmitted > 0, "drops must have occurred");
    }

    #[test]
    fn same_seed_is_byte_for_byte_reproducible() {
        let run = || {
            let net = SimNetConfig::faulty(RttMatrix::table1().truncated(3), 7);
            let mut cluster = sim(3, net);
            for i in 0..4 {
                cluster.register(stock(i), 30, 1);
            }
            let mut rng = DetRng::seed_from(5);
            for _ in 0..150 {
                let site = rng.index(3);
                let item = rng.index(4);
                cluster.submit(
                    site,
                    SiteOp::Order {
                        obj: stock(item),
                        amount: 1,
                        refill_to: Some(29),
                    },
                );
                if rng.chance(0.3) {
                    let _ = cluster.poll(site);
                }
            }
            for site in 0..3 {
                let _ = cluster.poll(site);
            }
            cluster.synchronize(0);
            let values: Vec<i64> = (0..4).map(|i| cluster.logical_value(&stock(i))).collect();
            let wal: Vec<usize> = (0..3).map(|s| cluster.engine(s).wal_len()).collect();
            (cluster.metrics(), values, wal)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn partitioned_sites_keep_committing_locally_and_converge_after_heal() {
        let mut cluster = sim(3, SimNetConfig::reliable(3, 80));
        cluster.register(stock(0), 90, 0);
        // Partition site 0 from 1 and 2.
        cluster.partition(0, 1);
        cluster.partition(0, 2);
        // Within-allowance orders commit locally on both sides of the cut.
        for site in 0..3 {
            for _ in 0..5 {
                let out = cluster.execute(
                    site,
                    SiteOp::Order {
                        obj: stock(0),
                        amount: 1,
                        refill_to: None,
                    },
                );
                assert!(
                    out.committed && !out.synchronized,
                    "treaty-covered ops must not block on the partition"
                );
            }
        }
        // A violation at site 1 whose round needs site 0 stalls…
        cluster.submit(
            1,
            SiteOp::Order {
                obj: stock(0),
                amount: 40,
                refill_to: Some(89),
            },
        );
        assert!(
            cluster.poll(1).is_empty(),
            "cross-partition sync must stall, not complete"
        );
        // …until the partition heals.
        cluster.heal_all();
        let outcomes = cluster.poll(1);
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].committed && outcomes[0].synchronized);
        cluster.synchronize(0);
        let expected = 90 - 15 - 40;
        assert_eq!(cluster.logical_value(&stock(0)), expected);
        for site in 0..3 {
            assert_eq!(cluster.value_at(site, &stock(0)), expected);
        }
    }

    #[test]
    fn a_killed_site_recovers_its_counters_from_the_wal() {
        let mut cluster = sim(2, SimNetConfig::reliable(2, 50));
        cluster.register(stock(0), 100, 1);
        for _ in 0..7 {
            let out = cluster.execute(
                1,
                SiteOp::Order {
                    obj: stock(0),
                    amount: 1,
                    refill_to: Some(99),
                },
            );
            assert!(out.committed);
        }
        let before = cluster.value_at(1, &stock(0));
        cluster.kill(1);
        assert!(cluster.is_down(1));
        // The live site keeps serving within its treaty.
        let out = cluster.execute(
            0,
            SiteOp::Order {
                obj: stock(0),
                amount: 1,
                refill_to: Some(99),
            },
        );
        assert!(out.committed);
        cluster.restart(1);
        cluster.run_until_quiescent();
        assert_eq!(
            cluster.value_at(1, &stock(0)),
            before,
            "WAL recovery must replay every committed decrement"
        );
        // And the cluster still folds correctly afterwards.
        cluster.synchronize(0);
        assert_eq!(cluster.logical_value(&stock(0)), 100 - 8);
        assert_eq!(
            cluster.value_at(0, &stock(0)),
            cluster.value_at(1, &stock(0))
        );
    }

    #[test]
    fn ops_submitted_while_down_execute_after_restart() {
        let mut cluster = sim(2, SimNetConfig::reliable(2, 50));
        cluster.register(stock(0), 50, 1);
        cluster.kill(0);
        cluster.submit(
            0,
            SiteOp::Order {
                obj: stock(0),
                amount: 1,
                refill_to: Some(49),
            },
        );
        assert!(cluster.poll(0).is_empty(), "a down site executes nothing");
        cluster.restart(0);
        let outcomes = cluster.poll(0);
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].committed);
        assert_eq!(cluster.logical_value(&stock(0)), 49);
    }

    #[test]
    fn kill_refuses_an_active_coordinator() {
        let mut cluster = sim(2, SimNetConfig::reliable(2, 50));
        cluster.register(stock(0), 4, 1);
        let coordinator = {
            // Find which site coordinates stock(0).
            let c = homeo_runtime::shard_hash(&stock(0)) % 2;
            c as usize
        };
        let origin = 1 - coordinator;
        // A violating op from the other site puts the coordinator mid-round
        // if we never pump. Submit without polling:
        cluster.submit(
            origin,
            SiteOp::Order {
                obj: stock(0),
                amount: 10,
                refill_to: Some(50),
            },
        );
        // Deliver just enough to start the round: step the scheduler by
        // hand until the coordinator holds an active round
        // (run_until_quiescent would complete it).
        while cluster.workers[coordinator].quiescent_coordinator() {
            let (from, to, frame) = cluster
                .transport
                .next_delivery()
                .expect("a violating order must reach its coordinator");
            let msg = Message::decode(&frame).expect("well-formed");
            let mut out = Vec::new();
            cluster.workers[to].handle(from, msg, &mut out);
            for (dest, msg) in out {
                let encoded = msg.encode();
                cluster.transport.send(to, dest, encoded);
            }
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cluster.kill(coordinator);
        }));
        assert!(result.is_err(), "killing an active coordinator must panic");
    }

    #[test]
    fn a_site_joins_under_faults_and_conservation_holds() {
        // Build the net over 4 sites, start with 3: the join grows into the
        // spare row of the five-datacenter geometry.
        let net = SimNetConfig::faulty(RttMatrix::table1().truncated(4), 0xE1);
        let mut cluster =
            SimCluster::from_engines((0..3).map(|_| Engine::new()).collect(), homeo_config(), net);
        cluster.register(stock(0), 400, 0);
        cluster.register(stock(1), 300, 0);
        let mut committed = 0i64;
        for i in 0..60 {
            let out = cluster.execute(
                i % 3,
                SiteOp::Order {
                    obj: stock(i % 2),
                    amount: 1,
                    refill_to: None,
                },
            );
            if out.committed {
                committed += 1;
            }
        }
        let joined = cluster.join();
        assert_eq!(joined, 3);
        for site in 0..4 {
            assert_eq!(cluster.roster(site).members, vec![0, 1, 2, 3]);
            assert_eq!(cluster.roster(site).epoch, 1);
        }
        // The joiner serves from its handed-off slice.
        for i in 0..40 {
            let out = cluster.execute(
                joined,
                SiteOp::Order {
                    obj: stock(i % 2),
                    amount: 1,
                    refill_to: None,
                },
            );
            if out.committed {
                committed += 1;
            }
        }
        cluster.synchronize(0);
        let total = cluster.logical_value(&stock(0)) + cluster.logical_value(&stock(1));
        assert_eq!(total, 400 + 300 - committed, "conservation across the join");
    }

    #[test]
    fn a_leave_during_a_partition_commits_after_heal() {
        let net = SimNetConfig::reliable(3, 90);
        let mut cluster = sim(3, net);
        cluster.register(stock(0), 200, 0);
        for site in 0..3 {
            for _ in 0..4 {
                assert!(
                    cluster
                        .execute(
                            site,
                            SiteOp::Order {
                                obj: stock(0),
                                amount: 1,
                                refill_to: None,
                            },
                        )
                        .committed
                );
            }
        }
        // Cut the leaver off from every survivor, then ask for the leave:
        // the handoff's fold needs the leaver's delta, so the change must
        // stall rather than drop it.
        cluster.partition(0, 2);
        cluster.partition(1, 2);
        cluster.begin_leave(2);
        cluster.run_until_quiescent();
        assert!(
            cluster.roster(0).contains(2),
            "the leave must not commit across the partition"
        );
        cluster.heal_all();
        cluster.run_until_quiescent();
        assert!(!cluster.roster(0).contains(2), "heal completes the leave");
        assert_eq!(cluster.roster(0).members, vec![0, 1]);
        cluster.synchronize(0);
        assert_eq!(
            cluster.logical_value(&stock(0)),
            200 - 12,
            "the leaver's deltas folded into the survivors"
        );
    }

    #[test]
    fn elastic_runs_are_reproducible_from_the_seed() {
        let run = || {
            let net = SimNetConfig::faulty(RttMatrix::table1().truncated(5), 0x5E);
            let mut cluster = SimCluster::from_engines(
                (0..3).map(|_| Engine::new()).collect(),
                homeo_config(),
                net,
            );
            cluster.register(stock(0), 500, 0);
            let mut rng = DetRng::seed_from(11);
            for _ in 0..80 {
                let site = rng.index(3);
                cluster.submit(
                    site,
                    SiteOp::Order {
                        obj: stock(0),
                        amount: 1,
                        refill_to: None,
                    },
                );
            }
            let joined = cluster.join();
            for _ in 0..40 {
                let site = rng.index(4);
                cluster.submit(
                    site,
                    SiteOp::Order {
                        obj: stock(0),
                        amount: 1,
                        refill_to: None,
                    },
                );
            }
            cluster.run_until_quiescent();
            cluster.leave(joined);
            cluster.synchronize(0);
            (cluster.metrics(), cluster.logical_value(&stock(0)))
        };
        assert_eq!(run(), run());
    }
}
