//! # homeo-analysis
//!
//! Symbolic-table program analysis for transactions in `L` / `L++`
//! (Section 2 of *The Homeostasis Protocol*).
//!
//! A **symbolic table** for a transaction `T` is a set of pairs
//! `⟨ϕ_D, φ⟩` where `ϕ_D` is a first-order predicate over database states and
//! `φ` is a partially evaluated transaction that produces the same final
//! database and log as `T` on every database satisfying `ϕ_D` (Section 2.2).
//! Tables are computed by the backward rules of Figure 6 ([`symbolic`]),
//! combined across transaction sets by conjunction of guards ([`joint`]),
//! kept small through independence-based factorization ([`factorize`]) and
//! parameter-preserving compression ([`params`]), and connected to the
//! solver substrate through linearization ([`linearize`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod factorize;
pub mod joint;
pub mod linearize;
pub mod params;
pub mod symbolic;

pub use joint::JointSymbolicTable;
pub use linearize::{bexp_to_dnf, conjuncts_to_constraints, linearize_aexp, LinearizeError};
pub use symbolic::{PartialTxn, SymbolicRow, SymbolicTable};
