//! Conversion from `L` expressions and formulas to the solver's linear
//! integer arithmetic.
//!
//! The analysis uses this to prune infeasible execution paths, and the treaty
//! generator (Section 4.2) uses it to turn the selected symbolic-table row ψ
//! into a conjunction of linear constraints.
//!
//! * database reads `read(x)` become the solver variable `x`;
//! * transaction parameters `p` become the solver variable `$p` (parameters
//!   are universally quantified for feasibility purposes, so treating them as
//!   free variables is sound);
//! * leftover temporary variables (which cannot occur in fully-constructed
//!   symbolic guards) become `^v`;
//! * non-linear subexpressions (a product of two non-constant operands) make
//!   the conversion fail with [`LinearizeError::NonLinear`].

use homeo_lang::ast::{AExp, BExp, CmpOp};
use homeo_solver::{LinExpr, LinearConstraint};

/// Reasons a formula could not be converted to linear arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinearizeError {
    /// A product of two non-constant expressions.
    NonLinear,
    /// The DNF expansion exceeded the size budget.
    TooManyDisjuncts,
}

impl std::fmt::Display for LinearizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinearizeError::NonLinear => write!(f, "non-linear arithmetic"),
            LinearizeError::TooManyDisjuncts => write!(f, "DNF expansion too large"),
        }
    }
}

impl std::error::Error for LinearizeError {}

/// The solver variable name used for a database object.
pub fn object_var(name: &str) -> String {
    name.to_string()
}

/// The solver variable name used for a transaction parameter.
pub fn param_var(name: &str) -> String {
    format!("${name}")
}

/// The solver variable name used for a (stray) temporary variable.
pub fn temp_var(name: &str) -> String {
    format!("^{name}")
}

/// Converts an arithmetic expression to a linear expression.
pub fn linearize_aexp(e: &AExp) -> Result<LinExpr, LinearizeError> {
    match e {
        AExp::Const(n) => Ok(LinExpr::constant(*n)),
        AExp::Param(p) => Ok(LinExpr::var(param_var(p.as_str()))),
        AExp::Var(v) => Ok(LinExpr::var(temp_var(v.as_str()))),
        AExp::Read(x) => Ok(LinExpr::var(object_var(x.as_str()))),
        AExp::Add(a, b) => Ok(linearize_aexp(a)?.plus(&linearize_aexp(b)?)),
        AExp::Neg(a) => Ok(linearize_aexp(a)?.scaled(-1)),
        AExp::Mul(a, b) => {
            // Allow multiplication by a constant on either side.
            if let Some(k) = a.const_fold() {
                Ok(linearize_aexp(b)?.scaled(k))
            } else if let Some(k) = b.const_fold() {
                Ok(linearize_aexp(a)?.scaled(k))
            } else {
                Err(LinearizeError::NonLinear)
            }
        }
    }
}

/// Converts a comparison atom (with the given polarity) into linear
/// constraints. A negated equality produces the two-disjunct expansion, so
/// the result is a *disjunction* of constraints.
fn atom_to_constraints(
    lhs: &AExp,
    op: CmpOp,
    rhs: &AExp,
    positive: bool,
) -> Result<Vec<LinearConstraint>, LinearizeError> {
    let l = linearize_aexp(lhs)?;
    let r = linearize_aexp(rhs)?;
    Ok(match (op, positive) {
        (CmpOp::Lt, true) => vec![LinearConstraint::lt(l, r)],
        (CmpOp::Le, true) => vec![LinearConstraint::le(l, r)],
        (CmpOp::Eq, true) => vec![LinearConstraint::eq(l, r)],
        // ¬(l < r) ⇔ l ≥ r
        (CmpOp::Lt, false) => vec![LinearConstraint::ge(l, r)],
        // ¬(l ≤ r) ⇔ l > r
        (CmpOp::Le, false) => vec![LinearConstraint::gt(l, r)],
        // ¬(l = r) ⇔ l < r ∨ l > r
        (CmpOp::Eq, false) => vec![
            LinearConstraint::lt(l.clone(), r.clone()),
            LinearConstraint::gt(l, r),
        ],
    })
}

/// Maximum number of disjuncts produced by [`bexp_to_dnf`] before giving up.
const MAX_DISJUNCTS: usize = 256;

/// Converts a boolean formula to disjunctive normal form over linear
/// constraints: the result is a list of conjunctions, the formula being their
/// disjunction.
pub fn bexp_to_dnf(b: &BExp) -> Result<Vec<Vec<LinearConstraint>>, LinearizeError> {
    dnf(b, true)
}

fn dnf(b: &BExp, positive: bool) -> Result<Vec<Vec<LinearConstraint>>, LinearizeError> {
    match (b, positive) {
        (BExp::True, true) | (BExp::False, false) => Ok(vec![vec![]]),
        (BExp::True, false) | (BExp::False, true) => Ok(vec![]),
        (BExp::Cmp(l, op, r), pol) => {
            let disjuncts = atom_to_constraints(l, *op, r, pol)?;
            Ok(disjuncts.into_iter().map(|c| vec![c]).collect())
        }
        (BExp::Not(inner), pol) => dnf(inner, !pol),
        (BExp::And(a, c), true) => {
            // DNF(a) × DNF(c)
            let left = dnf(a, true)?;
            let right = dnf(c, true)?;
            cross(&left, &right)
        }
        (BExp::And(a, c), false) => {
            // ¬(a ∧ c) ⇔ ¬a ∨ ¬c
            let mut out = dnf(a, false)?;
            out.extend(dnf(c, false)?);
            if out.len() > MAX_DISJUNCTS {
                return Err(LinearizeError::TooManyDisjuncts);
            }
            Ok(out)
        }
    }
}

fn cross(
    left: &[Vec<LinearConstraint>],
    right: &[Vec<LinearConstraint>],
) -> Result<Vec<Vec<LinearConstraint>>, LinearizeError> {
    if left.len().saturating_mul(right.len()) > MAX_DISJUNCTS {
        return Err(LinearizeError::TooManyDisjuncts);
    }
    let mut out = Vec::with_capacity(left.len() * right.len());
    for l in left {
        for r in right {
            let mut conj = l.clone();
            conj.extend(r.iter().cloned());
            out.push(conj);
        }
    }
    Ok(out)
}

/// Converts a formula that is (syntactically) a conjunction of atoms or
/// negated atoms into a single conjunction of linear constraints.
///
/// Fails when the formula contains a genuine disjunction (e.g. a negated
/// conjunction or a negated equality) or non-linear arithmetic; callers that
/// need full generality use [`bexp_to_dnf`].
pub fn conjuncts_to_constraints(b: &BExp) -> Result<Vec<LinearConstraint>, LinearizeError> {
    let d = bexp_to_dnf(b)?;
    match d.len() {
        0 => Ok(vec![LinearConstraint::lt(
            LinExpr::constant(0),
            LinExpr::constant(0),
        )]),
        1 => Ok(d.into_iter().next().expect("checked length")),
        _ => Err(LinearizeError::TooManyDisjuncts),
    }
}

/// Checks whether a formula is satisfiable by some database (and some
/// parameter values), using the DNF expansion plus the Fourier–Motzkin
/// engine. Formulas that cannot be linearized are conservatively considered
/// satisfiable.
pub fn is_satisfiable(b: &BExp) -> bool {
    match bexp_to_dnf(b) {
        Ok(disjuncts) => disjuncts
            .iter()
            .any(|conj| homeo_solver::fm::is_feasible(conj)),
        Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_lang::builder::{num, param, read, var};

    #[test]
    fn linearizes_reads_params_and_constants() {
        let e = read("x").add(param("p").mul(num(3))).sub(num(7));
        let le = linearize_aexp(&e).unwrap();
        assert_eq!(le.coeff("x"), 1);
        assert_eq!(le.coeff("$p"), 3);
        assert_eq!(le.constant_part(), -7);
    }

    #[test]
    fn rejects_nonlinear_products() {
        let e = read("x").mul(read("y"));
        assert_eq!(linearize_aexp(&e), Err(LinearizeError::NonLinear));
        // Constant * read is fine on either side.
        assert!(linearize_aexp(&num(2).mul(read("x"))).is_ok());
        assert!(linearize_aexp(&read("x").mul(num(2))).is_ok());
    }

    #[test]
    fn dnf_of_simple_guard() {
        // x + y < 10 → one disjunct, one constraint
        let b = read("x").add(read("y")).lt(num(10));
        let d = bexp_to_dnf(&b).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].len(), 1);
    }

    #[test]
    fn dnf_of_negated_conjunction() {
        // ¬(x < 10 ∧ y < 5) → x ≥ 10 ∨ y ≥ 5
        let b = read("x").lt(num(10)).and(read("y").lt(num(5))).not();
        let d = bexp_to_dnf(&b).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn dnf_of_negated_equality() {
        let b = read("x").eq(num(3)).not();
        let d = bexp_to_dnf(&b).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn conjunction_only_conversion() {
        let b = read("x").ge(num(0)).and(read("y").lt(num(5)));
        let cs = conjuncts_to_constraints(&b).unwrap();
        assert_eq!(cs.len(), 2);
        // A negated equality cannot be represented as a single conjunction.
        let b2 = read("x").eq(num(3)).not();
        assert!(conjuncts_to_constraints(&b2).is_err());
    }

    #[test]
    fn false_formula_yields_unsatisfiable_constraint() {
        let cs = conjuncts_to_constraints(&BExp::False).unwrap();
        assert!(!homeo_solver::fm::is_feasible(&cs));
    }

    #[test]
    fn satisfiability_checks() {
        use homeo_lang::ast::BExp;
        // 10 ≤ x + y < 20 is satisfiable.
        let sum = read("x").add(read("y"));
        let b = sum.clone().ge(num(10)).and(sum.clone().lt(num(20)));
        assert!(is_satisfiable(&b));
        // x + y < 10 ∧ x + y ≥ 20 is not.
        let b2 = sum.clone().lt(num(10)).and(sum.clone().ge(num(20)));
        assert!(!is_satisfiable(&b2));
        // Conservative on non-linear formulas.
        let b3 = read("x").mul(read("y")).lt(num(0));
        assert!(is_satisfiable(&b3));
        assert!(is_satisfiable(&BExp::True));
        assert!(!is_satisfiable(&BExp::False));
    }

    #[test]
    fn temp_vars_are_tolerated() {
        let b = var("t").lt(num(3));
        let d = bexp_to_dnf(&b).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0][0].vars().next().unwrap(), "^t");
    }
}
