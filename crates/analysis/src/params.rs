//! Parameter-preserving symbolic tables (Section 5.1).
//!
//! "Transactions may take integer parameters, and the behavior of the
//! transaction obviously depends on the concrete parameter values. Rather
//! than instantiate parameters now, we push the parameterization into the
//! symbolic tables for further compression."
//!
//! Two flavours of parameterization appear in the workloads:
//!
//! * **value parameters** (e.g. the payment amount): guards simply mention
//!   `$param`; [`crate::symbolic::SymbolicTable::instantiate`] closes them.
//! * **object-selecting parameters** (e.g. the TPC-C item id): the parameter
//!   picks *which* database object is touched. The L encoding of Appendix A
//!   would expand this into a dispatch over every possible id; instead the
//!   analysis is run once against a *placeholder object* and the table is
//!   re-targeted per concrete id with a cheap object rename. This module
//!   provides that template mechanism.

use serde::{Deserialize, Serialize};

use homeo_lang::ast::Transaction;
use homeo_lang::ids::ObjId;

use crate::symbolic::SymbolicTable;

/// The textual marker used inside placeholder object names, e.g.
/// `stock[@itemid]`.
pub fn placeholder(param: &str) -> String {
    format!("@{param}")
}

/// A symbolic table computed once over placeholder objects and instantiated
/// per concrete object id.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectTemplateTable {
    /// The placeholder-bearing table.
    pub template: SymbolicTable,
    /// The parameter (without `@`) whose value selects the object.
    pub object_param: String,
}

impl ObjectTemplateTable {
    /// Analyses a transaction whose object names embed `@param` placeholders.
    pub fn analyze(txn: &Transaction, object_param: impl Into<String>) -> Self {
        ObjectTemplateTable {
            template: SymbolicTable::analyze(txn),
            object_param: object_param.into(),
        }
    }

    /// Instantiates the object-selecting parameter: every occurrence of
    /// `@param` inside object names is replaced by the concrete value.
    pub fn for_object(&self, value: i64) -> SymbolicTable {
        let marker = placeholder(&self.object_param);
        let replacement = value.to_string();
        let renamed = self
            .template
            .rename_objects(&|o: &ObjId| ObjId::new(o.as_str().replace(&marker, &replacement)));
        SymbolicTable {
            transaction: format!("{}[{}={}]", renamed.transaction, self.object_param, value),
            ..renamed
        }
    }

    /// Instantiates both the object-selecting parameter and any remaining
    /// value parameters.
    pub fn for_object_with_args(&self, value: i64, args: &[i64]) -> SymbolicTable {
        self.for_object(value).instantiate(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_lang::database::Database;
    use homeo_lang::programs;

    #[test]
    fn placeholder_marker_format() {
        assert_eq!(placeholder("itemid"), "@itemid");
    }

    #[test]
    fn micro_order_template_expands_per_item() {
        // programs::micro_order() reads/writes the placeholder object
        // `stock[@itemid]`.
        let txn = programs::micro_order();
        let template = ObjectTemplateTable::analyze(&txn, "itemid");
        assert_eq!(template.template.len(), 2);

        let t42 = template.for_object(42);
        let objs: Vec<String> = t42.objects().iter().map(|o| o.to_string()).collect();
        assert_eq!(objs, vec!["stock[42]"]);

        // The per-item table behaves exactly like the directly-analysed
        // per-item transaction.
        let direct = crate::symbolic::SymbolicTable::analyze(&programs::micro_order_for_item(
            42,
            programs::DEFAULT_REFILL,
        ));
        for qty in [0, 1, 2, 5, 100] {
            let db = Database::from_pairs([("stock[42]", qty)]);
            let a = t42.eval_via_table(&db, &[0]).unwrap().unwrap();
            let b = direct.eval_via_table(&db, &[]).unwrap().unwrap();
            assert_eq!(a.database, b.database, "qty={qty}");
        }
    }

    #[test]
    fn template_is_analysed_once_and_reused() {
        let txn = programs::micro_order();
        let template = ObjectTemplateTable::analyze(&txn, "itemid");
        // Expanding many items never re-runs the analysis (constant row
        // count, distinct target objects).
        let expanded: Vec<_> = (0..50).map(|i| template.for_object(i)).collect();
        assert!(expanded.iter().all(|t| t.len() == 2));
        let distinct: std::collections::BTreeSet<String> = expanded
            .iter()
            .flat_map(|t| t.objects())
            .map(|o| o.to_string())
            .collect();
        assert_eq!(distinct.len(), 50);
    }
}
