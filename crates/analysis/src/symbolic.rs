//! Symbolic tables and their construction (Sections 2.2–2.3, Figure 6).
//!
//! The table is computed backwards over the transaction body:
//!
//! ```text
//! ⟦T, {}⟧            → ⟦c, {⟨true, skip⟩}⟧                 (1)
//! ⟦c1; c2, Q⟧        → ⟦c1, ⟦c2, Q⟧⟧                        (2)
//! ⟦if b c1 c2, Q⟧    → {⟨b ∧ ϕ, φ⟩ | ⟨ϕ,φ⟩ ∈ ⟦c1,Q⟧}
//!                      ∪ {⟨¬b ∧ ϕ, φ⟩ | ⟨ϕ,φ⟩ ∈ ⟦c2,Q⟧}     (3)
//! ⟦x̂ := e, Q⟧        → {⟨ϕ{e/x̂}, (x̂:=e; φ)⟩ | ⟨ϕ,φ⟩ ∈ Q}    (4)
//! ⟦skip, Q⟧          → Q                                     (5)
//! ⟦write(x=e), Q⟧    → {⟨ϕ{e/x}, (write(x=e); φ)⟩ | ⟨ϕ,φ⟩∈Q} (6)
//! ⟦print(e), Q⟧      → {⟨ϕ, (print(e); φ)⟩ | ⟨ϕ,φ⟩ ∈ Q}      (7)
//! ```
//!
//! Each row corresponds to one execution path; a concrete database (with
//! concrete parameter values) satisfies exactly one guard. Rows whose guard
//! is unsatisfiable (impossible paths) are pruned with the solver.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use homeo_lang::ast::{AExp, BExp, Com, Transaction};
use homeo_lang::database::Database;
use homeo_lang::eval::{EvalError, EvalOutcome, Evaluator, ParamBinding};
use homeo_lang::ids::{ObjId, ParamId};

use crate::linearize::is_satisfiable;

/// A partially evaluated transaction: a straight-line sequence of primitive
/// commands (assignments, writes, prints) with no branching.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialTxn {
    /// The commands, in execution order.
    pub commands: Vec<Com>,
}

impl PartialTxn {
    /// The empty (skip) partial transaction.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Prepends a command (used by the backward construction).
    pub fn prepend(&self, c: Com) -> Self {
        let mut commands = Vec::with_capacity(self.commands.len() + 1);
        commands.push(c);
        commands.extend(self.commands.iter().cloned());
        PartialTxn { commands }
    }

    /// Converts back to a single `L` command.
    pub fn to_com(&self) -> Com {
        Com::seq_all(self.commands.iter().cloned())
    }

    /// Converts into a full transaction (with the given name and parameters)
    /// so it can be evaluated or registered as a stored procedure.
    pub fn to_transaction(&self, name: impl Into<String>, params: Vec<ParamId>) -> Transaction {
        Transaction::new(name, params, self.to_com())
    }

    /// The database objects written by the partial transaction.
    pub fn writes(&self) -> BTreeSet<ObjId> {
        self.to_com().writes()
    }

    /// The database objects read by the partial transaction.
    pub fn reads(&self) -> BTreeSet<ObjId> {
        self.to_com().reads()
    }

    /// Renames database objects throughout (used by parameter-indexed object
    /// compression, e.g. instantiating `stock[@itemid]` to `stock[42]`).
    pub fn rename_objects(&self, rename: &impl Fn(&ObjId) -> ObjId) -> Self {
        PartialTxn {
            commands: self
                .commands
                .iter()
                .map(|c| rename_com(c, rename))
                .collect(),
        }
    }
}

impl fmt::Display for PartialTxn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.commands.is_empty() {
            return write!(f, "skip");
        }
        let parts: Vec<String> = self
            .commands
            .iter()
            .map(|c| homeo_lang::pretty::com_to_string(c).trim().to_string())
            .collect();
        write!(f, "{}", parts.join(" "))
    }
}

/// One row `⟨ϕ_D, φ⟩` of a symbolic table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolicRow {
    /// The guard over database states (and transaction parameters).
    pub guard: BExp,
    /// The partially evaluated transaction for databases satisfying the
    /// guard.
    pub effect: PartialTxn,
}

/// A symbolic table for a single transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolicTable {
    /// The analysed transaction's name.
    pub transaction: String,
    /// The transaction's formal parameters (guards may mention them).
    pub params: Vec<ParamId>,
    /// The rows, one per feasible execution path.
    pub rows: Vec<SymbolicRow>,
}

impl SymbolicTable {
    /// Computes the symbolic table for a transaction using the rules of
    /// Figure 6, pruning rows whose guard is unsatisfiable.
    pub fn analyze(txn: &Transaction) -> Self {
        Self::analyze_with_options(txn, true)
    }

    /// Computes the symbolic table, optionally without infeasible-path
    /// pruning (useful for tests and for measuring the effect of pruning).
    pub fn analyze_with_options(txn: &Transaction, prune: bool) -> Self {
        let initial = vec![SymbolicRow {
            guard: BExp::True,
            effect: PartialTxn::empty(),
        }];
        let mut rows = process(&txn.body, initial);
        if prune {
            rows.retain(|row| is_satisfiable(&row.guard));
        }
        SymbolicTable {
            transaction: txn.name.clone(),
            params: txn.params.clone(),
            rows,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Finds the unique row whose guard is satisfied by the given database
    /// and parameter binding (Section 2.3: a database satisfies exactly one
    /// guard).
    pub fn find_row(
        &self,
        db: &Database,
        params: &ParamBinding,
    ) -> Result<Option<&SymbolicRow>, EvalError> {
        for row in &self.rows {
            if eval_guard(&row.guard, db, params)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    /// Evaluates the transaction through the symbolic table: finds the row
    /// for the database, then runs the partially evaluated transaction. By
    /// Definition 2.2 this must agree with evaluating the original
    /// transaction directly (exercised heavily by tests).
    pub fn eval_via_table(
        &self,
        db: &Database,
        args: &[i64],
    ) -> Result<Option<EvalOutcome>, EvalError> {
        let binding: ParamBinding = self
            .params
            .iter()
            .cloned()
            .zip(args.iter().copied())
            .collect();
        match self.find_row(db, &binding)? {
            None => Ok(None),
            Some(row) => {
                let txn = row.effect.to_transaction(
                    format!("{}::partial", self.transaction),
                    self.params.clone(),
                );
                Ok(Some(Evaluator::eval(&txn, db, args)?))
            }
        }
    }

    /// Substitutes concrete values for the transaction's parameters in every
    /// guard and effect, producing a closed table.
    pub fn instantiate(&self, args: &[i64]) -> SymbolicTable {
        assert_eq!(args.len(), self.params.len(), "parameter arity mismatch");
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let mut guard = row.guard.clone();
                let mut commands = row.effect.commands.clone();
                for (p, v) in self.params.iter().zip(args) {
                    guard = guard.subst_param(p, *v);
                    commands = commands.iter().map(|c| c.subst_param(p, *v)).collect();
                }
                SymbolicRow {
                    guard,
                    effect: PartialTxn { commands },
                }
            })
            .filter(|row| is_satisfiable(&row.guard))
            .collect();
        SymbolicTable {
            transaction: format!("{}({:?})", self.transaction, args),
            params: Vec::new(),
            rows,
        }
    }

    /// Renames database objects in every guard and effect. Used to expand a
    /// per-template table (e.g. over the placeholder object
    /// `stock[@itemid]`) into per-item tables without re-running the
    /// analysis — the compression Section 5.1 describes.
    pub fn rename_objects(&self, rename: &impl Fn(&ObjId) -> ObjId) -> SymbolicTable {
        SymbolicTable {
            transaction: self.transaction.clone(),
            params: self.params.clone(),
            rows: self
                .rows
                .iter()
                .map(|row| SymbolicRow {
                    guard: rename_bexp(&row.guard, rename),
                    effect: row.effect.rename_objects(rename),
                })
                .collect(),
        }
    }

    /// All database objects mentioned anywhere in the table.
    pub fn objects(&self) -> BTreeSet<ObjId> {
        let mut out = BTreeSet::new();
        for row in &self.rows {
            out.extend(row.guard.reads());
            out.extend(row.effect.reads());
            out.extend(row.effect.writes());
        }
        out
    }
}

impl fmt::Display for SymbolicTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "symbolic table for {}:", self.transaction)?;
        for row in &self.rows {
            writeln!(
                f,
                "  {:<40} | {}",
                homeo_lang::pretty::bexp_to_string(&row.guard),
                row.effect
            )?;
        }
        Ok(())
    }
}

/// Evaluates a guard (which may mention parameters but no temporaries)
/// against a database.
pub fn eval_guard(guard: &BExp, db: &Database, params: &ParamBinding) -> Result<bool, EvalError> {
    let mut g = guard.clone();
    for (p, v) in params {
        g = g.subst_param(p, *v);
    }
    Evaluator::eval_closed_bexp(&g, db)
}

/// The backward construction: processes command `c` against the running
/// table `q` (the symbolic table of everything that executes *after* `c`).
fn process(c: &Com, q: Vec<SymbolicRow>) -> Vec<SymbolicRow> {
    match c {
        Com::Skip => q,
        Com::Seq(c1, c2) => {
            let after = process(c2, q);
            process(c1, after)
        }
        Com::If(b, then_c, else_c) => {
            let then_rows = process(then_c, q.clone());
            let else_rows = process(else_c, q);
            let mut rows = Vec::with_capacity(then_rows.len() + else_rows.len());
            for row in then_rows {
                rows.push(SymbolicRow {
                    guard: b.clone().and(row.guard),
                    effect: row.effect,
                });
            }
            for row in else_rows {
                rows.push(SymbolicRow {
                    guard: b.clone().not().and(row.guard),
                    effect: row.effect,
                });
            }
            rows
        }
        Com::Assign(v, e) => q
            .into_iter()
            .map(|row| SymbolicRow {
                guard: row.guard.subst_var(v, e),
                effect: row.effect.prepend(Com::Assign(v.clone(), e.clone())),
            })
            .collect(),
        Com::Write(x, e) => q
            .into_iter()
            .map(|row| SymbolicRow {
                guard: row.guard.subst_read(x, e),
                effect: row.effect.prepend(Com::Write(x.clone(), e.clone())),
            })
            .collect(),
        Com::Print(e) => q
            .into_iter()
            .map(|row| SymbolicRow {
                guard: row.guard,
                effect: row.effect.prepend(Com::Print(e.clone())),
            })
            .collect(),
    }
}

fn rename_aexp(e: &AExp, rename: &impl Fn(&ObjId) -> ObjId) -> AExp {
    match e {
        AExp::Const(_) | AExp::Param(_) | AExp::Var(_) => e.clone(),
        AExp::Read(x) => AExp::Read(rename(x)),
        AExp::Add(a, b) => AExp::Add(
            Box::new(rename_aexp(a, rename)),
            Box::new(rename_aexp(b, rename)),
        ),
        AExp::Mul(a, b) => AExp::Mul(
            Box::new(rename_aexp(a, rename)),
            Box::new(rename_aexp(b, rename)),
        ),
        AExp::Neg(a) => AExp::Neg(Box::new(rename_aexp(a, rename))),
    }
}

fn rename_bexp(b: &BExp, rename: &impl Fn(&ObjId) -> ObjId) -> BExp {
    match b {
        BExp::True | BExp::False => b.clone(),
        BExp::Cmp(l, op, r) => BExp::Cmp(
            Box::new(rename_aexp(l, rename)),
            *op,
            Box::new(rename_aexp(r, rename)),
        ),
        BExp::And(l, r) => BExp::And(
            Box::new(rename_bexp(l, rename)),
            Box::new(rename_bexp(r, rename)),
        ),
        BExp::Not(inner) => BExp::Not(Box::new(rename_bexp(inner, rename))),
    }
}

fn rename_com(c: &Com, rename: &impl Fn(&ObjId) -> ObjId) -> Com {
    match c {
        Com::Skip => Com::Skip,
        Com::Assign(v, e) => Com::Assign(v.clone(), rename_aexp(e, rename)),
        Com::Write(x, e) => Com::Write(rename(x), rename_aexp(e, rename)),
        Com::Print(e) => Com::Print(rename_aexp(e, rename)),
        Com::Seq(a, b) => Com::Seq(
            Box::new(rename_com(a, rename)),
            Box::new(rename_com(b, rename)),
        ),
        Com::If(b, t, e) => Com::If(
            rename_bexp(b, rename),
            Box::new(rename_com(t, rename)),
            Box::new(rename_com(e, rename)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_lang::builder::{assign, ite, num, read, var, write};
    use homeo_lang::programs;

    #[test]
    fn t1_table_matches_figure_4a() {
        let table = SymbolicTable::analyze(&programs::t1());
        assert_eq!(table.len(), 2);
        // Guards are x + y < 10 and ¬(x + y < 10); after substitution they
        // mention only database reads.
        for row in &table.rows {
            assert!(row.guard.temp_vars().is_empty());
            assert_eq!(
                row.guard
                    .reads()
                    .iter()
                    .map(|o| o.to_string())
                    .collect::<Vec<_>>(),
                vec!["x", "y"]
            );
        }
        // Effects write x by ±1.
        let writes: BTreeSet<_> = table
            .rows
            .iter()
            .flat_map(|r| r.effect.writes())
            .map(|o| o.to_string())
            .collect();
        assert_eq!(writes, BTreeSet::from(["x".to_string()]));
    }

    #[test]
    fn table_evaluation_agrees_with_direct_evaluation() {
        // Definition 2.2: evaluating via the table equals evaluating T.
        for txn in [
            programs::t1(),
            programs::t2(),
            programs::t3(),
            programs::t4(),
            programs::micro_order_for_item(3, 100),
            programs::remote_write_example(),
        ] {
            let table = SymbolicTable::analyze(&txn);
            for x in [-5, 0, 3, 9, 10, 15, 25, 101] {
                for y in [0, 1, 5, 13, 40] {
                    let db = Database::from_pairs([("x", x), ("y", y), ("stock[3]", x)]);
                    let direct = Evaluator::eval(&txn, &db, &[]).unwrap();
                    let via = table
                        .eval_via_table(&db, &[])
                        .unwrap()
                        .unwrap_or_else(|| panic!("no row for x={x}, y={y} in {}", txn.name));
                    assert_eq!(direct.database, via.database, "{} on x={x} y={y}", txn.name);
                    assert_eq!(direct.log, via.log, "{} on x={x} y={y}", txn.name);
                }
            }
        }
    }

    #[test]
    fn each_database_satisfies_exactly_one_guard() {
        let table = SymbolicTable::analyze(&programs::t4());
        for x in [-10, 0, 10, 11, 50, 100, 101] {
            for y in [0, 1, 2] {
                let db = Database::from_pairs([("x", x), ("y", y)]);
                let matching = table
                    .rows
                    .iter()
                    .filter(|r| eval_guard(&r.guard, &db, &ParamBinding::new()).unwrap())
                    .count();
                assert_eq!(matching, 1, "x={x}, y={y}");
            }
        }
    }

    #[test]
    fn infeasible_paths_are_pruned() {
        // if (x < 0) then { if (x > 10) then { write(y=1) } else { write(y=2) } }
        // The x < 0 ∧ x > 10 path is impossible.
        let txn = Transaction::simple(
            "nested",
            assign("xh", read("x")).then(ite(
                var("xh").lt(num(0)),
                ite(
                    var("xh").gt(num(10)),
                    write("y", num(1)),
                    write("y", num(2)),
                ),
                write("y", num(3)),
            )),
        );
        let pruned = SymbolicTable::analyze(&txn);
        let unpruned = SymbolicTable::analyze_with_options(&txn, false);
        assert_eq!(unpruned.len(), 3);
        assert_eq!(pruned.len(), 2);
    }

    #[test]
    fn straight_line_transaction_has_single_true_row() {
        let txn = Transaction::simple(
            "inc",
            assign("t", read("x")).then(write("x", var("t").add(num(1)))),
        );
        let table = SymbolicTable::analyze(&txn);
        assert_eq!(table.len(), 1);
        assert_eq!(table.rows[0].guard, BExp::True);
        assert_eq!(table.rows[0].effect.commands.len(), 2);
    }

    #[test]
    fn parameters_survive_in_guards_and_instantiate() {
        // if (read(stock) >= amount) write(stock = stock - amount) else print(0)
        let mut b = homeo_lang::builder::TxnBuilder::new("order");
        let amount = b.param("amount");
        b.push(assign("s", read("stock")));
        b.push(ite(
            var("s").ge(amount.clone()),
            write("stock", var("s").sub(amount)),
            homeo_lang::builder::print(num(0)),
        ));
        let txn = b.build();
        let table = SymbolicTable::analyze(&txn);
        assert_eq!(table.len(), 2);
        assert!(table.rows.iter().all(|r| !r.guard.params().is_empty()));

        let closed = table.instantiate(&[5]);
        assert_eq!(closed.len(), 2);
        assert!(closed.rows.iter().all(|r| r.guard.params().is_empty()));
        // With stock = 7 >= 5 the first row applies and decrements.
        let db = Database::from_pairs([("stock", 7)]);
        let row = closed.find_row(&db, &ParamBinding::new()).unwrap().unwrap();
        let out = Evaluator::eval(&row.effect.to_transaction("p", vec![]), &db, &[]).unwrap();
        assert_eq!(out.database.get(&"stock".into()), 2);
    }

    #[test]
    fn print_statements_are_preserved_in_order() {
        let txn = Transaction::simple(
            "logger",
            homeo_lang::builder::print(num(1))
                .then(write("x", num(5)))
                .then(homeo_lang::builder::print(read("x"))),
        );
        let table = SymbolicTable::analyze(&txn);
        assert_eq!(table.len(), 1);
        let out = table
            .eval_via_table(&Database::new(), &[])
            .unwrap()
            .unwrap();
        assert_eq!(out.log, vec![1, 5]);
    }

    #[test]
    fn rename_objects_retargets_guards_and_effects() {
        let table = SymbolicTable::analyze(&programs::micro_order_for_item(0, 100));
        let renamed =
            table.rename_objects(&|o| ObjId::new(o.as_str().replace("stock[0]", "stock[77]")));
        let objs: Vec<String> = renamed.objects().iter().map(|o| o.to_string()).collect();
        assert_eq!(objs, vec!["stock[77]"]);
        // And the renamed table still evaluates correctly.
        let db = Database::from_pairs([("stock[77]", 2)]);
        let out = renamed.eval_via_table(&db, &[]).unwrap().unwrap();
        assert_eq!(out.database.get(&"stock[77]".into()), 1);
    }

    #[test]
    fn write_then_read_substitution_is_applied() {
        // write(x = 5); xh := read(x); if (xh < 3) print(1) else print(2)
        // The guard must be about the *written* value (5 < 3 = false), i.e.
        // only the `else` path is feasible.
        let txn = Transaction::simple(
            "wr",
            write("x", num(5)).then(assign("xh", read("x"))).then(ite(
                var("xh").lt(num(3)),
                homeo_lang::builder::print(num(1)),
                homeo_lang::builder::print(num(2)),
            )),
        );
        let table = SymbolicTable::analyze(&txn);
        assert_eq!(table.len(), 1);
        let out = table
            .eval_via_table(&Database::from_pairs([("x", 0)]), &[])
            .unwrap()
            .unwrap();
        assert_eq!(out.log, vec![2]);
    }

    #[test]
    fn display_renders_guards_and_effects() {
        let table = SymbolicTable::analyze(&programs::t1());
        let s = table.to_string();
        assert!(s.contains("symbolic table for T1"));
        assert!(s.contains("write(x = xh + 1)") || s.contains("write(x = xh - 1)"));
    }
}
