//! Joint symbolic tables for sets of transactions (Section 2.2).
//!
//! A symbolic table for `K` transactions is a `K+1`-ary relation: each tuple
//! `⟨ϕ_D, φ_1, ..., φ_K⟩` pairs a database predicate with one partially
//! evaluated transaction per member. It is built from the per-transaction
//! tables by taking the cross product and conjoining the guards (Figure 4c),
//! pruning combinations whose conjunction is unsatisfiable.

use std::fmt;

use serde::{Deserialize, Serialize};

use homeo_lang::ast::BExp;
use homeo_lang::database::Database;
use homeo_lang::eval::{EvalError, ParamBinding};

use crate::linearize::is_satisfiable;
use crate::symbolic::{eval_guard, PartialTxn, SymbolicTable};

/// One row of a joint symbolic table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JointRow {
    /// The conjoined guard `ϕ_1 ∧ ... ∧ ϕ_K`.
    pub guard: BExp,
    /// One partially evaluated transaction per analysed transaction, in the
    /// same order as [`JointSymbolicTable::transactions`].
    pub effects: Vec<PartialTxn>,
}

/// A joint symbolic table for a set of transactions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JointSymbolicTable {
    /// Names of the member transactions, in column order.
    pub transactions: Vec<String>,
    /// The rows.
    pub rows: Vec<JointRow>,
}

impl JointSymbolicTable {
    /// Builds the joint table from per-transaction tables.
    ///
    /// Parameterised transactions must be instantiated first: guards of
    /// different transactions would otherwise conflate unrelated parameters
    /// with the same name.
    pub fn build(tables: &[SymbolicTable]) -> Self {
        assert!(
            tables.iter().all(|t| t.params.is_empty()),
            "joint tables require instantiated (parameterless) member tables"
        );
        let transactions = tables.iter().map(|t| t.transaction.clone()).collect();
        let mut rows = vec![JointRow {
            guard: BExp::True,
            effects: Vec::new(),
        }];
        for table in tables {
            let mut next = Vec::with_capacity(rows.len() * table.rows.len().max(1));
            for acc in &rows {
                for row in &table.rows {
                    let guard = acc.guard.clone().and(row.guard.clone());
                    if !is_satisfiable(&guard) {
                        continue;
                    }
                    let mut effects = acc.effects.clone();
                    effects.push(row.effect.clone());
                    next.push(JointRow { guard, effects });
                }
            }
            rows = next;
        }
        JointSymbolicTable { transactions, rows }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Finds the unique row whose guard is satisfied by the database.
    ///
    /// This is the ψ-selection step at the start of every treaty-generation
    /// phase (Section 4.1).
    pub fn find_row(&self, db: &Database) -> Result<Option<&JointRow>, EvalError> {
        let empty = ParamBinding::new();
        for row in &self.rows {
            if eval_guard(&row.guard, db, &empty)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

impl fmt::Display for JointSymbolicTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "joint symbolic table for {{{}}}:",
            self.transactions.join(", ")
        )?;
        for row in &self.rows {
            write!(
                f,
                "  {:<40}",
                homeo_lang::pretty::bexp_to_string(&row.guard)
            )?;
            for e in &row.effects {
                write!(f, " | {e}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_lang::database::Database;
    use homeo_lang::eval::Evaluator;
    use homeo_lang::programs;

    fn joint_t1_t2() -> JointSymbolicTable {
        let t1 = SymbolicTable::analyze(&programs::t1());
        let t2 = SymbolicTable::analyze(&programs::t2());
        JointSymbolicTable::build(&[t1, t2])
    }

    #[test]
    fn joint_table_for_t1_t2_matches_figure_4c() {
        let joint = joint_t1_t2();
        // Figure 4c: three feasible combinations (the x+y ≥ 20 ∧ x+y < 10
        // cross term is pruned as unsatisfiable).
        assert_eq!(joint.len(), 3);
        assert_eq!(joint.transactions, vec!["T1", "T2"]);
        for row in &joint.rows {
            assert_eq!(row.effects.len(), 2);
        }
    }

    #[test]
    fn row_selection_matches_the_paper_example() {
        // With x = 10, y = 13 the paper picks ψ : x + y ≥ 20.
        let joint = joint_t1_t2();
        let db = Database::from_pairs([("x", 10), ("y", 13)]);
        let row = joint.find_row(&db).unwrap().expect("row must exist");
        // Both effects must be the "decrement" variants in that row: running
        // them decreases x and y respectively.
        let t1_out =
            Evaluator::eval(&row.effects[0].to_transaction("p1", vec![]), &db, &[]).unwrap();
        assert_eq!(t1_out.database.get(&"x".into()), 9);
        let t2_out =
            Evaluator::eval(&row.effects[1].to_transaction("p2", vec![]), &db, &[]).unwrap();
        assert_eq!(t2_out.database.get(&"y".into()), 12);
    }

    #[test]
    fn every_database_matches_exactly_one_joint_row() {
        let joint = joint_t1_t2();
        for x in [-5, 0, 4, 9, 10, 15, 19, 20, 30] {
            for y in [0, 1, 5, 10, 25] {
                let db = Database::from_pairs([("x", x), ("y", y)]);
                let matches = joint
                    .rows
                    .iter()
                    .filter(|r| eval_guard(&r.guard, &db, &ParamBinding::new()).unwrap())
                    .count();
                assert_eq!(matches, 1, "x={x} y={y}");
            }
        }
    }

    #[test]
    fn joint_table_over_disjoint_objects_is_a_full_cross_product() {
        // Transactions touching unrelated objects cannot prune any rows.
        let a = SymbolicTable::analyze(&programs::micro_order_for_item(1, 100));
        let b = SymbolicTable::analyze(&programs::micro_order_for_item(2, 100));
        let joint = JointSymbolicTable::build(&[a.clone(), b.clone()]);
        assert_eq!(joint.len(), a.len() * b.len());
    }

    #[test]
    fn singleton_joint_table_mirrors_the_member() {
        let t3 = SymbolicTable::analyze(&programs::t3());
        let joint = JointSymbolicTable::build(std::slice::from_ref(&t3));
        assert_eq!(joint.len(), t3.len());
        assert_eq!(joint.transactions, vec!["T3"]);
    }

    #[test]
    #[should_panic(expected = "instantiated")]
    fn parameterised_members_are_rejected() {
        let t = SymbolicTable::analyze(&programs::topk_insert(0));
        let _ = JointSymbolicTable::build(&[t]);
    }
}
