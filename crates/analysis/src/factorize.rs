//! Independence-based factorization of symbolic tables (Section 5.1).
//!
//! "Often transaction code operates on multiple database objects
//! independently; for example, the TPC-C New Order transaction orders
//! several different items. [...] Using a read-write dependency analysis
//! like the one in SDD-1, we identify such points of independence and use
//! them to encode symbolic tables more concisely in a factorized manner."
//!
//! The factorization works on the transaction body: top-level commands are
//! grouped into *independent components* such that no database object or
//! temporary variable is shared between components. The full symbolic table
//! is (isomorphic to) the cross product of the per-component tables, so
//! storing the components avoids the exponential blow-up — a transaction
//! ordering `n` items has `2n` rows in factorized form instead of `2^n`.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use homeo_lang::ast::{Com, Transaction};
use homeo_lang::ids::{ObjId, TempVar};

use crate::symbolic::SymbolicTable;

/// A factorized symbolic table: one independent component per entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FactorizedTable {
    /// The analysed transaction's name.
    pub transaction: String,
    /// Per-component symbolic tables. Their cross product represents the
    /// full table.
    pub components: Vec<SymbolicTable>,
}

impl FactorizedTable {
    /// Splits the transaction into independent components and analyses each.
    pub fn analyze(txn: &Transaction) -> Self {
        let components = split_independent(txn)
            .into_iter()
            .enumerate()
            .map(|(i, body)| {
                let sub = Transaction::new(format!("{}#{}", txn.name, i), txn.params.clone(), body);
                SymbolicTable::analyze(&sub)
            })
            .collect();
        FactorizedTable {
            transaction: txn.name.clone(),
            components,
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when there are no components (empty transaction).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The number of rows the *unfactorized* table would have (product of
    /// component sizes); useful for reporting the compression ratio.
    pub fn dense_rows(&self) -> usize {
        self.components.iter().map(|c| c.len().max(1)).product()
    }

    /// The total number of rows actually stored.
    pub fn stored_rows(&self) -> usize {
        self.components.iter().map(|c| c.len()).sum()
    }
}

impl fmt::Display for FactorizedTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "factorized table for {} ({} components, {} stored rows, {} dense rows):",
            self.transaction,
            self.len(),
            self.stored_rows(),
            self.dense_rows()
        )?;
        for c in &self.components {
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// The read/write footprint of a command: database objects plus temporary
/// variables (temporaries induce dependencies between commands of the same
/// transaction just like objects do).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct Footprint {
    objects: BTreeSet<ObjId>,
    temps: BTreeSet<TempVar>,
}

impl Footprint {
    fn of(c: &Com) -> Self {
        let mut fp = Footprint::default();
        collect(c, &mut fp);
        fp
    }

    fn overlaps(&self, other: &Footprint) -> bool {
        self.objects.intersection(&other.objects).next().is_some()
            || self.temps.intersection(&other.temps).next().is_some()
    }

    fn merge(&mut self, other: &Footprint) {
        self.objects.extend(other.objects.iter().cloned());
        self.temps.extend(other.temps.iter().cloned());
    }
}

fn collect(c: &Com, fp: &mut Footprint) {
    match c {
        Com::Skip => {}
        Com::Assign(v, e) => {
            fp.temps.insert(v.clone());
            fp.temps.extend(e.temp_vars());
            fp.objects.extend(e.reads());
        }
        Com::Write(x, e) => {
            fp.objects.insert(x.clone());
            fp.temps.extend(e.temp_vars());
            fp.objects.extend(e.reads());
        }
        Com::Print(e) => {
            fp.temps.extend(e.temp_vars());
            fp.objects.extend(e.reads());
        }
        Com::Seq(a, b) => {
            collect(a, fp);
            collect(b, fp);
        }
        Com::If(b, t, e) => {
            fp.temps.extend(b.temp_vars());
            fp.objects.extend(b.reads());
            collect(t, fp);
            collect(e, fp);
        }
    }
}

/// Flattens top-level sequencing into a list of commands.
fn flatten(c: &Com, out: &mut Vec<Com>) {
    match c {
        Com::Seq(a, b) => {
            flatten(a, out);
            flatten(b, out);
        }
        Com::Skip => {}
        other => out.push(other.clone()),
    }
}

/// Groups the top-level commands of a transaction into maximal independent
/// components (union-find over shared footprints), preserving program order
/// within each component.
fn split_independent(txn: &Transaction) -> Vec<Com> {
    let mut commands = Vec::new();
    flatten(&txn.body, &mut commands);
    if commands.is_empty() {
        return vec![Com::Skip];
    }
    let footprints: Vec<Footprint> = commands.iter().map(Footprint::of).collect();

    // Union-find over command indices.
    let mut parent: Vec<usize> = (0..commands.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    // Maintain a running footprint per component root to keep this O(n·α)
    // in the number of commands rather than quadratic in footprint size.
    let mut group_fp: Vec<Footprint> = footprints.clone();
    for i in 0..commands.len() {
        for (j, footprint) in footprints.iter().enumerate().skip(i + 1) {
            let ri = find(&mut parent, i);
            let rj = find(&mut parent, j);
            if ri != rj && group_fp[ri].overlaps(footprint) {
                let merged = {
                    let mut m = group_fp[ri].clone();
                    m.merge(&group_fp[rj]);
                    m
                };
                parent[rj] = ri;
                group_fp[ri] = merged;
            }
        }
    }

    // Collect components in order of their first command.
    let mut roots_in_order: Vec<usize> = Vec::new();
    let mut members: std::collections::BTreeMap<usize, Vec<Com>> =
        std::collections::BTreeMap::new();
    for (i, command) in commands.iter().enumerate() {
        let r = find(&mut parent, i);
        if !members.contains_key(&r) {
            roots_in_order.push(r);
        }
        members.entry(r).or_default().push(command.clone());
    }
    roots_in_order
        .into_iter()
        .map(|r| Com::seq_all(members.remove(&r).expect("root has members")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_lang::database::Database;
    use homeo_lang::eval::Evaluator;
    use homeo_lang::programs;

    #[test]
    fn multi_item_order_factorizes_per_item() {
        let items = [1, 2, 3, 4, 5];
        let txn = programs::micro_order_multi(&items, 100);
        let fact = FactorizedTable::analyze(&txn);
        assert_eq!(fact.len(), items.len());
        // 2 rows per item stored vs 2^5 dense.
        assert_eq!(fact.stored_rows(), 2 * items.len());
        assert_eq!(fact.dense_rows(), 1 << items.len());
    }

    #[test]
    fn dependent_commands_stay_together() {
        // T1 reads x and y and writes x — a single component.
        let fact = FactorizedTable::analyze(&programs::t1());
        assert_eq!(fact.len(), 1);
        assert_eq!(fact.stored_rows(), 2);
    }

    #[test]
    fn temporaries_induce_dependencies() {
        // xh := read(a); write(b = xh)   — two objects, linked by the temp.
        use homeo_lang::builder::*;
        let txn = homeo_lang::ast::Transaction::simple(
            "copy",
            assign("t", read("a")).then(write("b", var("t"))),
        );
        let fact = FactorizedTable::analyze(&txn);
        assert_eq!(fact.len(), 1);
    }

    #[test]
    fn component_evaluation_composes_to_the_full_transaction() {
        let items = [10, 20];
        let txn = programs::micro_order_multi(&items, 50);
        let fact = FactorizedTable::analyze(&txn);
        let db = Database::from_pairs([("stock[10]", 5), ("stock[20]", 1)]);
        // Direct evaluation.
        let direct = Evaluator::eval(&txn, &db, &[]).unwrap();
        // Composed evaluation: run each component's selected row in order.
        let mut current = db.clone();
        for comp in &fact.components {
            let out = comp.eval_via_table(&current, &[]).unwrap().unwrap();
            current = out.database;
        }
        assert_eq!(current, direct.database);
    }

    #[test]
    fn empty_transaction_yields_single_trivial_component() {
        let txn = homeo_lang::ast::Transaction::simple("noop", Com::Skip);
        let fact = FactorizedTable::analyze(&txn);
        assert_eq!(fact.len(), 1);
        assert_eq!(fact.dense_rows(), 1);
    }
}
