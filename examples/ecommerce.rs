//! The e-commerce microbenchmark (Section 6.1) in miniature: compares the
//! homeostasis protocol with OPT, 2PC and local execution on the
//! stock/refill workload of Listing 1 and prints a small version of
//! Figures 11 and 12.
//!
//! All four modes run through the shared `SiteRuntime` surface.
//!
//! ```text
//! cargo run --release --example ecommerce
//! ```

use homeo_bench_free::micro_point;
use homeostasis::crates::workloads::micro::{MicroConfig, Mode};

/// A tiny stand-in for the bench crate's experiment runner so the example
/// only depends on the public workspace crates.
mod homeo_bench_free {
    use homeostasis::crates::runtime::drive;
    use homeostasis::crates::workloads::micro::{
        build_runtime, closed_loop_config, MicroConfig, MicroWorkload, Mode,
    };

    pub struct Point {
        pub mode: &'static str,
        pub throughput_per_replica: f64,
        pub sync_ratio_percent: f64,
        pub median_ms: f64,
        pub p99_ms: f64,
    }

    pub fn micro_point(config: &MicroConfig, mode: Mode) -> Point {
        let mut runtime = build_runtime(config, mode);
        let mut workload = MicroWorkload::new(config.clone(), mode);
        let loop_config = closed_loop_config(config, 8, 3_000);
        let metrics = drive(&loop_config, runtime.as_mut(), &mut workload);
        Point {
            mode: mode.label(),
            throughput_per_replica: metrics.throughput_per_replica(),
            sync_ratio_percent: metrics.sync_ratio_percent(),
            median_ms: metrics.latency.percentile_ms(50.0),
            p99_ms: metrics.latency.percentile_ms(99.0),
        }
    }
}

fn main() {
    let config = MicroConfig {
        num_items: 1_000,
        rtt_ms: 100,
        replicas: 2,
        lookahead: 10,
        futures: 2,
        ..MicroConfig::default()
    };
    println!(
        "e-commerce microbenchmark: {} items, REFILL={}, RTT={} ms, {} replicas\n",
        config.num_items, config.refill, config.rtt_ms, config.replicas
    );
    println!(
        "{:<8} {:>16} {:>12} {:>12} {:>12}",
        "mode", "txn/s/replica", "sync %", "p50 (ms)", "p99 (ms)"
    );
    for mode in Mode::all() {
        let p = micro_point(&config, mode);
        println!(
            "{:<8} {:>16.0} {:>12.2} {:>12.2} {:>12.2}",
            p.mode, p.throughput_per_replica, p.sync_ratio_percent, p.median_ms, p.p99_ms
        );
    }
    println!(
        "\nExpected shape (paper, Figures 10–12): local ≳ homeo ≈ opt ≫ 2pc in throughput;\n\
         homeo/opt latency is a few ms for ~97% of transactions, 2PC is always ~2×RTT."
    );
}
