//! The TPC-C experiment of Section 6.2 in miniature: New Order / Payment /
//! Delivery over two simulated datacenters (UE and UW from Table 1), with a
//! sweep over the hot-item percentage `H`.
//!
//! Every mode runs through the shared `SiteRuntime` surface.
//!
//! ```text
//! cargo run --release --example tpcc
//! ```

use homeostasis::crates::runtime::drive;
use homeostasis::crates::sim::clock::millis;
use homeostasis::crates::sim::ClosedLoopConfig;
use homeostasis::crates::workloads::micro::Mode;
use homeostasis::crates::workloads::tpcc::{build_runtime, TpccConfig, TpccWorkload};

fn run(config: &TpccConfig, mode: Mode) -> (f64, f64) {
    let mut runtime = build_runtime(config, mode);
    let mut workload = TpccWorkload::new(config.clone(), mode);
    let loop_config = ClosedLoopConfig {
        replicas: config.replicas,
        clients_per_replica: 8,
        warmup: millis(500),
        measure: millis(3_000),
        seed: 11,
        cores_per_replica: 16,
    };
    let _ = drive(&loop_config, runtime.as_mut(), &mut workload);
    let throughput = workload.new_order_counter.committed as f64 / 3.0 / config.replicas as f64;
    (throughput, workload.new_order_counter.sync_ratio_percent())
}

fn main() {
    println!("TPC-C subset over the UE/UW datacenters (Table 1 RTT: 64 ms)\n");
    println!(
        "{:>4}  {:>14} {:>10}   {:>14} {:>10}   {:>14}",
        "H", "homeo NO tx/s", "sync %", "opt NO tx/s", "sync %", "2pc NO tx/s"
    );
    for hotness in [1, 10, 25, 50] {
        let config = TpccConfig {
            warehouses: 2,
            districts_per_warehouse: 2,
            items_per_district: 100,
            customers: 500,
            replicas: 2,
            hotness,
            lookahead: 8,
            futures: 2,
            ..TpccConfig::default()
        };
        let (homeo_tput, homeo_sync) = run(&config, Mode::Homeostasis);
        let (opt_tput, opt_sync) = run(&config, Mode::Opt);
        let (twopc_tput, _) = run(&config, Mode::TwoPc);
        println!(
            "{hotness:>4}  {homeo_tput:>14.1} {homeo_sync:>10.2}   {opt_tput:>14.1} {opt_sync:>10.2}   {twopc_tput:>14.1}"
        );
    }
    println!(
        "\nExpected shape (paper, Figures 19–20, 28–29): throughput falls and the\n\
         synchronization ratio rises as H grows; homeostasis stays close to OPT and\n\
         far above 2PC at every skew level."
    );
}
