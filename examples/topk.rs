//! The distributed top-k example from the paper's introduction (Figures 1
//! and 2, k = 2).
//!
//! Item sites receive insertions; the aggregator maintains the top-2 list.
//! The homeostasis view of the improved algorithm: each item site holds a
//! cached `min` (the smallest top-2 value) and only needs to talk to the
//! aggregator when an insert exceeds it — i.e. the treaty is
//! "every inserted value ≤ min".
//!
//! ```text
//! cargo run --release --example topk
//! ```

use homeostasis::analysis::SymbolicTable;
use homeostasis::lang::{programs, Database, Evaluator};
use homeostasis::sim::DetRng;

fn main() {
    // Analyze the aggregator's transaction: the symbolic table shows exactly
    // which inserts change the top-2 list (and therefore require a new min
    // to be broadcast) and which leave it untouched.
    let aggregate = programs::topk_aggregate();
    let table = SymbolicTable::analyze(&aggregate);
    println!("--- symbolic table of the aggregator ---");
    print!("{table}");

    // Simulate three item sites with the improved algorithm.
    let mut aggregator = Database::from_pairs([("top1", 100), ("top2", 91), ("min", 91)]);
    let mut rng = DetRng::seed_from(42);
    let mut messages_basic = 0u32; // the naive algorithm: every insert is sent
    let mut messages_improved = 0u32;
    let inserts = 500;

    for key in 0..inserts {
        let value = rng.int_inclusive(0, 120);
        messages_basic += 1;
        let min = aggregator.get(&"min".into());
        if value > min {
            // Treaty violated: notify the aggregator and recompute the top-2.
            messages_improved += 1;
            let out = Evaluator::eval(&aggregate, &aggregator, &[value]).expect("aggregate");
            aggregator = out.database;
        }
        let _ = key;
    }

    println!("\n--- {inserts} inserts across 3 item sites ---");
    println!("basic algorithm messages:    {messages_basic}");
    println!("improved algorithm messages: {messages_improved}");
    println!(
        "communication avoided:       {:.1}%",
        100.0 * (1.0 - messages_improved as f64 / messages_basic as f64)
    );
    println!(
        "final top-2: [{}, {}] (min = {})",
        aggregator.get(&"top1".into()),
        aggregator.get(&"top2".into()),
        aggregator.get(&"min".into())
    );
    assert!(aggregator.get(&"top1".into()) >= aggregator.get(&"top2".into()));
}
