//! Quickstart: the paper's running example end to end.
//!
//! Analyzes the two transactions of Figure 3, prints their symbolic tables
//! and the joint table of Figure 4, negotiates treaties for the initial
//! database (x = 10, y = 13), and then runs a disconnected workload through
//! the homeostasis protocol, verifying observational equivalence throughout.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use homeostasis::analysis::{JointSymbolicTable, SymbolicTable};
use homeostasis::lang::{programs, Database};
use homeostasis::protocol::{Loc, OptimizerConfig};
use homeostasis::HomeostasisSystem;

fn main() {
    // 1. The workload: T1 and T2 from Figure 3.
    let t1 = programs::t1();
    let t2 = programs::t2();
    println!("--- transactions ---");
    print!("{}", homeostasis::lang::pretty::transaction_to_string(&t1));
    print!("{}", homeostasis::lang::pretty::transaction_to_string(&t2));

    // 2. Program analysis: symbolic tables (Figure 4a/4b) and the joint
    //    table (Figure 4c).
    let st1 = SymbolicTable::analyze(&t1);
    let st2 = SymbolicTable::analyze(&t2);
    println!("\n--- symbolic tables ---");
    print!("{st1}");
    print!("{st2}");
    let joint = JointSymbolicTable::build(&[st1, st2]);
    println!("\n--- joint symbolic table ---");
    print!("{joint}");

    // 3. Build the system: x on site 0, y on site 1, initial database
    //    (10, 13) as in Section 4.1.
    let initial = Database::from_pairs([("x", 10), ("y", 13)]);
    let mut system = HomeostasisSystem::builder()
        .transactions(vec![t1, t2])
        .location(Loc::from_pairs([("x", 0usize), ("y", 1usize)]))
        .sites(2)
        .initial_database(initial)
        .optimizer(OptimizerConfig {
            lookahead: 20,
            futures: 3,
            seed: 7,
        })
        .build();

    println!("\n--- treaties for round {} ---", system.treaty_round());
    for local in &system.cluster().treaties().locals {
        println!(
            "site {}: {}",
            local.site,
            local
                .constraints
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(" ∧ ")
        );
    }

    // 4. Run a workload and watch how rarely the sites talk to each other.
    println!("\n--- execution ---");
    let mut synced = 0;
    for i in 0..30 {
        let name = if i % 2 == 0 { "T1" } else { "T2" };
        let outcome = system.execute(name).expect("execution succeeds");
        if outcome.synchronized {
            synced += 1;
            println!(
                "step {i:2}: {name} VIOLATED the treaty -> synchronized (round {} now)",
                system.treaty_round()
            );
        }
    }
    println!(
        "30 transactions executed, {synced} required communication ({}%)",
        synced * 100 / 30
    );
    println!("final database: {:?}", system.global_database());
    assert!(system.verify_equivalence());
    println!("observational equivalence to a serial execution: verified ✔");
}
