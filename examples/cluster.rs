//! The cluster subsystem in thirty lines: worker threads behind the
//! `SiteRuntime` surface, then the same protocol under a deterministic
//! fault injector with a partition and a site crash.
//!
//! ```sh
//! cargo run --release --example cluster
//! ```

use homeostasis::cluster::{ClusterConfig, ClusterRuntime, SimCluster, SimNetConfig};
use homeostasis::lang::ids::ObjId;
use homeostasis::protocol::{OptimizerConfig, ReplicatedMode};
use homeostasis::runtime::{SiteOp, SiteRuntime};
use homeostasis::sim::{RttMatrix, Timer};

fn order(obj: &ObjId) -> SiteOp {
    SiteOp::Order {
        obj: obj.clone(),
        amount: 1,
        refill_to: Some(99),
    }
}

fn main() {
    let config = ClusterConfig::new(ReplicatedMode::Homeostasis {
        optimizer: Some(OptimizerConfig {
            lookahead: 10,
            futures: 2,
            seed: 21,
        }),
    })
    .with_timer(Timer::fixed_zero());
    let stock = ObjId::new("stock[0]");

    // --- Real threads: one OS worker per site over mpsc channels. -------
    let mut cluster = ClusterRuntime::threaded(3, config.clone());
    cluster.register(stock.clone(), 100, 1);
    for i in 0..90 {
        let out = cluster.execute(i % 3, order(&stock));
        assert!(out.committed);
    }
    cluster.synchronize(0);
    let stats = cluster.stats();
    println!(
        "threaded: 90 orders over 3 worker threads -> value {} at every site \
         ({} local commits, {} synchronizations)",
        cluster.value_at(0, &stock),
        stats.local_commits,
        stats.synchronizations,
    );

    // --- Deterministic faults: Table 1 RTTs, drops, a partition, a crash.
    let net = SimNetConfig::faulty(RttMatrix::table1().truncated(3), 7);
    let mut sim = SimCluster::new(3, config, net);
    sim.register(stock.clone(), 100, 1);
    for i in 0..30 {
        sim.execute(i % 3, order(&stock));
    }
    sim.partition(0, 1);
    sim.partition(0, 2);
    let out = sim.execute(0, order(&stock));
    println!(
        "sim: treaty-covered order during the partition -> committed={} without sync",
        out.committed
    );
    sim.heal_all();
    sim.kill(2);
    sim.restart(2);
    sim.run_until_quiescent();
    sim.synchronize(0);
    println!(
        "sim: after heal + crash recovery every site observes {} (logical {})",
        sim.value_at(2, &stock),
        sim.logical_value(&stock),
    );
    assert_eq!(sim.value_at(0, &stock), sim.value_at(2, &stock));
}
