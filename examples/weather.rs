//! The "beyond top-k" example of Appendix D: a weather-monitoring
//! application that records temperature observations and tracks the highest
//! daily minimums. The treaties needed for correct disconnected execution
//! are linear but tedious to derive by hand — here the analysis derives them
//! automatically from the observer transaction.
//!
//! ```text
//! cargo run --release --example weather
//! ```

use homeostasis::analysis::SymbolicTable;
use homeostasis::lang::builder::*;
use homeostasis::lang::{Database, Transaction};
use homeostasis::protocol::{Loc, OptimizerConfig};
use homeostasis::sim::DetRng;
use homeostasis::HomeostasisSystem;

/// A transaction per weather station: fold a new observation into the
/// station's daily minimum (a pure local update).
fn record(station: usize) -> Transaction {
    let mut b = TxnBuilder::new(format!("Record{station}"));
    let min_obj = format!("daily_min[{station}]");
    b.push(assign("cur", read(min_obj.as_str())));
    b.push(assign(
        "obs",
        read(format!("observation[{station}]").as_str()),
    ));
    b.push(when(
        var("obs").lt(var("cur")),
        write(min_obj.as_str(), var("obs")),
    ));
    b.build()
}

/// The dashboard transaction: prints the highest of the per-station daily
/// minimums (the k = 1 case of "top-k of minimums").
fn dashboard(stations: usize) -> Transaction {
    let mut b = TxnBuilder::new("Dashboard");
    b.push(assign("best", num(-1000)));
    for s in 0..stations {
        let min_obj = format!("daily_min[{s}]");
        b.push(assign(format!("m{s}").as_str(), read(min_obj.as_str())));
        b.push(when(
            var("best").lt(var(format!("m{s}").as_str())),
            assign("best", var(format!("m{s}").as_str())),
        ));
    }
    b.push(write("display", var("best")));
    b.push(print(var("best")));
    b.build()
}

fn main() {
    let stations = 3;
    let dash = dashboard(stations);
    let table = SymbolicTable::analyze(&dash);
    println!(
        "--- dashboard symbolic table: {} rows (one per ordering of the station minimums) ---",
        table.len()
    );
    print!("{table}");

    // Place each station on its own site and the dashboard on a fourth site.
    let mut loc = Loc::new().with_default_site(stations);
    let mut initial = Database::new();
    let mut transactions = Vec::new();
    for s in 0..stations {
        loc.assign(format!("daily_min[{s}]").into(), s);
        loc.assign(format!("observation[{s}]").into(), s);
        initial.set(format!("daily_min[{s}]").into(), 20 + s as i64);
        transactions.push(record(s));
    }
    loc.assign("display".into(), stations);
    transactions.push(dash);

    let mut system = HomeostasisSystem::builder()
        .transactions(transactions)
        .location(loc)
        .sites(stations + 1)
        .initial_database(initial)
        .optimizer(OptimizerConfig {
            lookahead: 10,
            futures: 2,
            seed: 3,
        })
        .build();

    let mut rng = DetRng::seed_from(1);
    let mut synced = 0;
    let total = 60;
    for i in 0..total {
        // Feed a new observation to a random station, then run its record
        // transaction and occasionally refresh the dashboard.
        let station = rng.index(stations);
        let name = format!("Record{station}");
        let out = system.execute(&name).expect("record");
        if out.synchronized {
            synced += 1;
        }
        if i % 10 == 9 {
            let out = system.execute("Dashboard").expect("dashboard");
            if out.synchronized {
                synced += 1;
            }
        }
    }
    println!("\n{total} observations processed, {synced} required synchronization");
    println!(
        "display now shows: {}",
        system.global_database().get(&"display".into())
    );
    assert!(system.verify_equivalence());
    println!("observational equivalence: verified ✔");
}
