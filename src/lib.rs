//! Umbrella crate for the Homeostasis Protocol reproduction.
//!
//! This crate exists to host the repository-level examples (`examples/`) and
//! integration tests (`tests/`). Library users should depend on
//! [`homeostasis_core`] (crate `homeostasis-core`), which is re-exported here
//! in full.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use homeostasis_core::*;

/// Crates that make up the workspace, re-exported for integration tests and
/// examples that need to reach below the facade.
pub mod crates {
    pub use homeo_analysis as analysis;
    pub use homeo_baselines as baselines;
    pub use homeo_cluster as cluster;
    pub use homeo_lang as lang;
    pub use homeo_protocol as protocol;
    pub use homeo_runtime as runtime;
    pub use homeo_sim as sim;
    pub use homeo_solver as solver;
    pub use homeo_store as store;
    pub use homeo_telemetry as telemetry;
    pub use homeo_workloads as workloads;
}
